"""The shard worker: one process hosting one or more logical shards.

Each logical shard is a complete Linear Road engine — its own workflow
instance, SCWF director (scheduler, waves, windows, QoS, tracing and
checkpointing all intact), virtual clock and cost model — built over an
initially *empty* arrival schedule.  The coordinator streams the
shard's slice of the input over a ``multiprocessing`` pipe in
watermarked chunks; the worker feeds each chunk into the shard's source
and advances the shard's virtual clock to the watermark.  Because the
simulation runtime admits arrivals at their stamped times and
fast-forwards idle gaps, this chunked delivery is bit-identical to
preloading the full schedule.

Per-shard determinism: the cost-model jitter stream is seeded with
:func:`~repro.shard.routing.shard_seed` and fault injectors are salted
with :func:`~repro.shard.routing.shard_salt` — both derive from the
shard's *key value*, never from worker count or placement, so a shard
computes the same answer no matter where (or alongside what) it runs.
Window-formation timeouts — the one engine-time-driven windowing
mechanism, and therefore the one placement-dependent one — are stripped
at build time (:func:`repro.core.strip_window_timeouts`), so shard
workflows are *event-time pure*: panes close only when later events
cross their boundaries.

The message protocol (coordinator -> worker, replies in parentheses)::

    ("chunk", watermark_us, payload, frontier_us)
        feed + advance every hosted shard; ``payload`` is either a
        ``repro.shard.codec`` wire blob (bytes) or a raw ``{group:
        [(ts, value), ...]}`` dict, and ``frontier_us`` (None when
        frontier closure is off) is the coordinator's merged minimum
        frontier, applied to every shard's timed windows before the
        chunk runs.  The coordinator pipelines chunks — up to its
        credit window may be outstanding before any ack returns
            (-> ("ack", worker_id, watermark_us, backlogs, frontiers,
                 decode_us), one per chunk, in chunk order)
    ("dump", group)      extract a shard as a migration envelope
                                            (-> "state")
    ("adopt", group, envelope)  rebuild + restore a migrated shard
                                            (-> "adopted")
    ("finish", horizon_us, frontier_us)  run every shard to the horizon
                            (closing passed panes when ``frontier_us``
                            is set) and report canonical traces +
                            counters (-> "result")
    ("stop",)            exit the loop

Failures inside a handler are reported as ``("error", worker_id,
message)`` instead of killing the process, so the coordinator can
surface the underlying exception.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from time import perf_counter_ns
from typing import Any, Dict, Hashable, Optional, Sequence, Tuple, Union

from ..checkpoint import DirectoryCheckpointStore, EngineCheckpointer
from ..core.exceptions import SimulationError
from ..core.timekeeper import US_PER_S
from ..core.windows import strip_window_timeouts
from ..fusion import fuse_workflow
from ..linearroad.workflow import build_linear_road, LinearRoadSystem
from ..resilience import FaultPolicy, install_faults
from ..simulation.clock import VirtualClock
from ..simulation.runtime import SimulationRuntime
from ..stafilos.scwf_director import SCWFDirector
from .codec import ColumnarBatch, decode_chunk
from .migration import apply_envelope, make_envelope
from .routing import canonical_run_traces, shard_salt, shard_seed


def _shard_name(key_name: str, group: Hashable) -> str:
    """The canonical shard label seeds and manifests are derived from."""
    return f"shard:{key_name}={group}"


@dataclass(frozen=True)
class ShardWorkerSpec:
    """Everything a worker process needs to build its shard engines.

    Plain picklable data: the experiment configuration, the run seed,
    the shard key name, the groups this worker initially hosts and the
    full group list (recorded in checkpoint manifests so resume knows
    the complete partition).
    """

    worker_id: int
    config: Any  # repro.harness.ExperimentConfig
    seed: int
    key_name: str
    groups: Tuple[Hashable, ...]
    all_groups: Tuple[Hashable, ...]


class ShardEngine:
    """One logical shard's complete engine inside a worker process."""

    def __init__(
        self,
        key_name: str,
        group: Hashable,
        director: SCWFDirector,
        system: LinearRoadSystem,
        clock: VirtualClock,
        runtime: SimulationRuntime,
        checkpointer: Optional[EngineCheckpointer],
        injectors: list,
    ):
        self.key_name = key_name
        self.group = group
        self.director = director
        self.system = system
        self.clock = clock
        self.runtime = runtime
        self.checkpointer = checkpointer
        self.injectors = injectors

    def feed(
        self, arrivals: Union[Sequence[Tuple[int, Any]], ColumnarBatch]
    ) -> None:
        """Append one chunk of arrivals to the shard's source.

        Accepts either the classic row-tuple list or a decoded
        :class:`~repro.shard.codec.ColumnarBatch`, which is handed to
        the source column-wise — no intermediate tuple list is built.
        """
        if not arrivals:
            return
        if isinstance(arrivals, ColumnarBatch):
            self.system.source.feed_columns(
                arrivals.ts, arrivals.values, arrivals.event_ts
            )
        else:
            self.system.source.feed(arrivals)
        self.director.invalidate_arrival_cache()

    def run_to(self, watermark_us: int) -> None:
        """Advance the shard's virtual clock to the watermark."""
        self.runtime.run(watermark_us / US_PER_S)

    def drain(self, horizon_us: int) -> None:
        """Process everything admitted, past the horizon if needed."""
        self.runtime.run(horizon_us / US_PER_S, drain=True)

    def close_frontier(self, up_to_us: int) -> int:
        """Apply the coordinator's merged frontier to timed windows."""
        if self.director.frontier is None:
            return 0
        return self.director.close_frontier_windows(up_to_us)

    def frontier_bound(self) -> Optional[int]:
        """This shard's local progress bound for the coordinator merge."""
        if self.director.frontier is None:
            return None
        return self.director.frontier_bound()

    def backlog(self) -> int:
        """Unprocessed items currently queued inside the shard engine."""
        return self.director.backlog()

    def result(self) -> Dict[str, Any]:
        """Canonical traces + run counters for the coordinator's merge."""
        system = self.system
        director = self.director
        return {
            "group": self.group,
            "traces": canonical_run_traces(system),
            "tolls": len(system.toll_out.items),
            "alerts": len(system.accident_out.items),
            "accidents_recorded": system.recorder.inserted,
            "internal_firings": director.total_internal_firings,
            "backlog_at_end": director.backlog(),
            "injected_faults": sum(
                injector.injected for injector in self.injectors
            ),
            "failures": director.supervisor.total_failures,
            "dead_letters": len(director.supervisor.dead_letters),
            "checkpoints": (
                0
                if self.checkpointer is None
                else self.checkpointer.checkpoints_taken
            ),
            "toll_response_times_us": list(
                system.toll_out.response_times_us
            ),
        }


def build_shard_engine(
    config: Any,
    seed: int,
    key_name: str,
    group: Hashable,
    all_groups: Sequence[Hashable] = (),
    arrivals: Sequence[Tuple[int, Any]] = (),
    checkpoint_path: Optional[Any] = None,
) -> ShardEngine:
    """Build one logical shard's engine (structure only, seeded data).

    Mirrors the harness's single-process engine builder, with three
    shard-specific twists: the arrival schedule starts as whatever the
    caller provides (empty for pipe-fed workers, the regenerated slice
    for checkpoint resume), the cost model and fault injectors draw
    per-shard seeded streams, and the checkpoint store — when the config
    enables checkpointing — lives in a ``shard-<group>`` subdirectory
    with the shard identity stamped on every manifest.
    """
    from ..harness.experiment import checkpoint_meta, make_scheduler

    if config.scheduler.kind == "PNCWF":
        raise SimulationError(
            "sharded execution requires an SCWF scheduler; the "
            "thread-based PNCWF director has no shard-safe loop"
        )
    from ..harness.configs import default_cost_model

    name = _shard_name(key_name, group)
    disorder_us = int(getattr(config.workload, "disorder_s", 0.0) * US_PER_S)
    frontier_mode = getattr(config, "frontier", None)
    system = build_linear_road(
        list(arrivals),
        # Frontier-closing shards pace the source through the reorder
        # pump even with zero disorder, matching the single-process
        # engine's release discipline (one event timestamp per pump).
        out_of_order=disorder_us > 0 or frontier_mode == "close",
        disorder_us=disorder_us,
    )
    # Sharded engines run event-time pure: window-formation timeouts
    # fire on engine time, and engine clocks are placement-dependent
    # (they advance with whatever shares the process).  Stripping them
    # before attach makes every pane close on event arrival only, so a
    # shard computes the same answer under any placement — and matches
    # the equally-stripped single-process oracle bit for bit.  With
    # frontier closure the timeouts are never armed (the director skips
    # deadline registration) and panes close on the coordinator's merged
    # frontier instead — equally placement-independent, since per-group
    # frontiers derive from each shard's own deterministic engine.
    if frontier_mode != "close":
        strip_window_timeouts(system.workflow)
    clock = VirtualClock()
    cost_model = default_cost_model(
        seed=shard_seed(config.cost_seed + seed, name)
    )
    error_policy = config.error_policy
    if error_policy is None:
        error_policy = (
            FaultPolicy.resilient()
            if config.fault_spec
            else FaultPolicy(propagate=True)
        )
    if config.fuse:
        fuse_workflow(system.workflow)
    director = SCWFDirector(
        make_scheduler(config.scheduler),
        clock,
        cost_model,
        error_policy=error_policy,
        train_size=config.train_size,
    )
    if config.qos is not None:
        controller = director.apply_qos(config.qos)
        controller.attach_latency_probe(
            lambda sink=system.toll_out: sink.response_times_us
        )
    if frontier_mode is not None:
        from ..frontier import FrontierTracker, LatenessPolicy

        # ``external=True``: a shard never self-closes on its local
        # frontier — closure arrives only as the coordinator's merged
        # minimum, so every placement sees the same closure sequence.
        director.enable_frontier(
            FrontierTracker(mode=frontier_mode, external=True),
            LatenessPolicy.parse(config.lateness)
            if getattr(config, "lateness", None) is not None
            else None,
        )
    director.attach(system.workflow)
    injectors = (
        install_faults(
            system.workflow,
            config.fault_spec,
            seed_salt=shard_salt(name),
        )
        if config.fault_spec
        else []
    )
    checkpointer: Optional[EngineCheckpointer] = None
    if checkpoint_path is None and config.checkpoint_dir is not None:
        # Each shard owns a subdirectory of the run's checkpoint dir;
        # ``checkpoint_path`` overrides it when a resume already points
        # at the shard directory itself.
        checkpoint_path = Path(config.checkpoint_dir) / f"shard-{group}"
    if checkpoint_path is not None:
        store = DirectoryCheckpointStore(
            checkpoint_path, retain=config.checkpoint_retain
        )
        every_us = (
            int(config.checkpoint_every_s * US_PER_S)
            if config.checkpoint_every_s is not None
            else None
        )
        checkpointer = EngineCheckpointer(
            director,
            store,
            every_us=every_us,
            meta=checkpoint_meta(config, seed),
            shard={
                "key": key_name,
                "group": group,
                "groups": list(all_groups),
            },
        )
    runtime = SimulationRuntime(director, clock, checkpointer=checkpointer)
    return ShardEngine(
        key_name,
        group,
        director,
        system,
        clock,
        runtime,
        checkpointer,
        injectors,
    )


def worker_main(conn: Any, spec: ShardWorkerSpec) -> None:
    """Entry point of one shard worker process.

    Builds an engine per assigned group, announces readiness, then
    serves the coordinator's message loop until ``("stop",)``.
    """
    engines: Dict[Hashable, ShardEngine] = {
        group: build_shard_engine(
            spec.config,
            spec.seed,
            spec.key_name,
            group,
            all_groups=spec.all_groups,
        )
        for group in spec.groups
    }
    conn.send(("ready", spec.worker_id, tuple(sorted(engines))))
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "stop":
            break
        try:
            if kind == "chunk":
                _, watermark_us, payload, frontier_us = message
                if isinstance(payload, (bytes, bytearray, memoryview)):
                    decode_start = perf_counter_ns()
                    slices = decode_chunk(payload, now_us=watermark_us)
                    decode_us = (
                        perf_counter_ns() - decode_start
                    ) // 1000
                else:  # raw dict: direct callers and old tooling
                    slices, decode_us = payload, 0
                backlogs: Dict[Hashable, int] = {}
                frontiers: Dict[Hashable, Optional[int]] = {}
                for group in sorted(engines):
                    engine = engines[group]
                    engine.feed(slices.get(group, ()))
                    if frontier_us is not None:
                        # Graduated closure: each call closes one pane
                        # boundary, so drain the staged firings between
                        # rounds to let a closure's output reach any
                        # downstream pane before that pane closes too
                        # (run_to would no-op once the clock sits at
                        # the watermark).
                        while engine.close_frontier(frontier_us):
                            engine.drain(watermark_us)
                    engine.run_to(watermark_us)
                    backlogs[group] = engine.backlog()
                    frontiers[group] = engine.frontier_bound()
                # The echoed watermark returns the chunk's credit to
                # the coordinator's pipelined window.
                conn.send(
                    ("ack", spec.worker_id, watermark_us, backlogs,
                     frontiers, decode_us)
                )
            elif kind == "dump":
                _, group = message
                engine = engines.pop(group)
                conn.send(
                    ("state", spec.worker_id, group, make_envelope(engine))
                )
            elif kind == "adopt":
                _, group, envelope = message
                engine = build_shard_engine(
                    spec.config,
                    spec.seed,
                    spec.key_name,
                    group,
                    all_groups=spec.all_groups,
                )
                apply_envelope(engine, envelope)
                engines[group] = engine
                conn.send(("adopted", spec.worker_id, group))
            elif kind == "finish":
                _, horizon_us, frontier_us = message
                results = {}
                for group in sorted(engines):
                    engine = engines[group]
                    engine.run_to(horizon_us)
                    if frontier_us is not None:
                        # Final closure cascades: a closed pane's firing
                        # can feed a downstream timed window, so close
                        # and drain until no pane remains.
                        engine.drain(horizon_us)
                        while engine.close_frontier(frontier_us):
                            engine.drain(horizon_us)
                    results[group] = engine.result()
                conn.send(("result", spec.worker_id, results))
            else:
                conn.send(
                    (
                        "error",
                        spec.worker_id,
                        f"unknown shard message {kind!r}",
                    )
                )
        except Exception as exc:  # noqa: BLE001 - reported to coordinator
            conn.send(
                (
                    "error",
                    spec.worker_id,
                    f"{type(exc).__name__}: {exc}",
                )
            )
    conn.close()
