"""The Tracer protocol and its two built-in implementations.

Design goals, in priority order:

1. **Zero cost when off.** Every hook point in the engine follows the
   pattern ``tr = current_tracer(); tr.enabled and tr.instant(...)`` —
   with the default :class:`NullTracer` the per-hook cost is one function
   call returning a module global plus one attribute load and a short-
   circuited boolean, with *no* argument tuple or dict ever built.
2. **Bounded memory when on.** :class:`RecordingTracer` stores records in
   a ring buffer (``collections.deque(maxlen=...)``): a 600-second Linear
   Road run cannot exhaust memory no matter how chatty the engine is.
   Dropped-record counts are kept so exports can disclose truncation.
3. **One timebase.** Record timestamps are microseconds on whatever clock
   the engine runs (virtual time in the simulation harness), which maps
   1:1 onto the ``ts`` field of the Chrome trace-event format.

Three record kinds cover everything the engine emits:

``span``
    a named duration (an actor firing, a director iteration);
``instant``
    a point event (a scheduler decision, a window formation, a shed drop);
``counter``
    a named time series sample (queue depth, backlog).
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator, Optional


class TraceRecord:
    """One typed telemetry record on the engine's µs timebase."""

    __slots__ = ("kind", "name", "ts", "dur", "actor", "args")

    def __init__(
        self,
        kind: str,
        name: str,
        ts: int,
        dur: int = 0,
        actor: Optional[str] = None,
        args: Optional[dict[str, Any]] = None,
    ):
        self.kind = kind  # "span" | "instant" | "counter"
        self.name = name
        self.ts = ts
        self.dur = dur
        self.actor = actor
        self.args = args

    def to_dict(self) -> dict[str, Any]:
        """A plain-dict view (JSONL export, tests)."""
        out: dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "ts": self.ts,
        }
        if self.kind == "span":
            out["dur"] = self.dur
        if self.actor is not None:
            out["actor"] = self.actor
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self) -> str:
        actor = f" actor={self.actor}" if self.actor else ""
        return f"TraceRecord({self.kind} {self.name!r} ts={self.ts}{actor})"


class Tracer:
    """Protocol every tracer implements; also the do-nothing base.

    Hook points check :attr:`enabled` before building any arguments, so
    subclasses that want records must set ``enabled = True``.
    """

    #: Hook sites skip all argument construction when this is False.
    enabled = False

    def span(
        self,
        name: str,
        ts: int,
        dur: int,
        actor: Optional[str] = None,
        **args: Any,
    ) -> None:
        """Record a named duration starting at *ts* lasting *dur* µs."""

    def instant(
        self, name: str, ts: int, actor: Optional[str] = None, **args: Any
    ) -> None:
        """Record a point event at *ts*."""

    def counter(
        self, name: str, ts: int, value: float, actor: Optional[str] = None
    ) -> None:
        """Record a sample of the named time series at *ts*."""


class NullTracer(Tracer):
    """The default tracer: drops everything, costs (almost) nothing.

    ``enabled`` stays False, so hook sites short-circuit before even
    calling the methods; the methods exist only so direct calls are safe.
    """

    enabled = False


class RecordingTracer(Tracer):
    """Captures records into a bounded ring buffer.

    *capacity* bounds memory: once full, the oldest records are evicted
    (``deque(maxlen)`` semantics) and :attr:`dropped` counts the
    evictions so exporters can disclose truncation.
    """

    enabled = True

    def __init__(self, capacity: int = 1_000_000):
        if capacity <= 0:
            raise ValueError("RecordingTracer capacity must be positive")
        self.capacity = capacity
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        #: How many records the ring buffer evicted (oldest-first).
        self.dropped = 0
        #: Total records ever offered (kept + dropped).
        self.emitted = 0

    # ------------------------------------------------------------------
    def _push(self, record: TraceRecord) -> None:
        records = self._records
        if len(records) == self.capacity:
            self.dropped += 1
        records.append(record)
        self.emitted += 1

    def span(
        self,
        name: str,
        ts: int,
        dur: int,
        actor: Optional[str] = None,
        **args: Any,
    ) -> None:
        """Record a completed span (actor firing, iteration...)."""
        self._push(TraceRecord("span", name, ts, dur, actor, args or None))

    def instant(
        self, name: str, ts: int, actor: Optional[str] = None, **args: Any
    ) -> None:
        """Record a point event (decision, formation, drop...)."""
        self._push(TraceRecord("instant", name, ts, 0, actor, args or None))

    def counter(
        self, name: str, ts: int, value: float, actor: Optional[str] = None
    ) -> None:
        """Record a counter sample (queue depth, backlog...)."""
        self._push(
            TraceRecord("counter", name, ts, 0, actor, {"value": value})
        )

    # ------------------------------------------------------------------
    def records(self) -> list[TraceRecord]:
        """The retained records, oldest first."""
        return list(self._records)

    def clear(self) -> None:
        """Discard retained records (drop/emit counters are kept)."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)


#: The process-wide tracer every hook point consults.  Module-global (not
#: per-director) so hook points deep inside window operators and receivers
#: need no plumbing; :func:`use_tracer` scopes an override.
_TRACER: Tracer = NullTracer()

#: Mirror of ``_TRACER.enabled``, kept in sync by :func:`set_tracer`.
#: Hook sites on per-event paths test this single module attribute —
#: one attribute load and a branch — before touching ``_TRACER``.
ENABLED: bool = False


def current_tracer() -> Tracer:
    """The tracer hook points should emit to (hot path; cheap)."""
    return _TRACER


def get_tracer() -> Tracer:
    """Alias of :func:`current_tracer` for the public facade."""
    return _TRACER


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install *tracer* process-wide; ``None`` restores the NullTracer.

    Returns the previously installed tracer so callers can restore it.
    """
    global _TRACER, ENABLED
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NullTracer()
    ENABLED = _TRACER.enabled
    return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Context manager: install *tracer* for the block, then restore."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
