"""Virtual-time model of the thread-based PNCWF director.

The live PNCWF engine (:mod:`repro.directors.pncwf`) delegates all resource
allocation to the operating system: every actor is a thread, the OS
round-robins between runnable threads, and every queue operation pays
lock/notify synchronization.  This module reproduces that execution model
on the virtual clock so it can be compared head-to-head with the STAFiLOS
schedulers in the paper's Figure 8:

* each actor (and each source) is a *simulated thread*;
* a thread is runnable when it has a formed window to consume (sources:
  when an external arrival is due);
* the simulated OS serves runnable threads round-robin with a fixed time
  slice, charging ``cost_model.context_switch_us`` on every switch;
* every event hop through a receiver charges
  ``cost_model.sync_per_event_us`` to the running thread (the lock/notify
  cost of the blocking queues).

These two overheads are the calibrated substitution for "Java threads on an
8-core Xeon" documented in DESIGN.md: they reduce effective capacity by
roughly a third relative to the single-threaded scheduled director, the
ratio the paper measured (thrash at ~120 vs ~160 reports/s).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..core.actors import Actor, SourceActor
from ..core.director import Director
from ..core.events import CWEvent
from ..core.exceptions import DirectorError, ResilienceError
from ..core.ports import InputPort
from ..core.receivers import Receiver, WindowedReceiver
from ..core.windows import Window, WindowSpec
from ..resilience import FailureAction, FaultPolicy, FaultSupervisor
from .clock import VirtualClock
from .cost_model import CostModel


class _SimReadyReceiver(WindowedReceiver):
    """Windowed receiver that wakes the owning simulated thread."""

    def __init__(self, spec: Optional[WindowSpec], director, port=None):
        self._passthrough = spec is None
        effective = spec if spec is not None else WindowSpec.tokens(
            1, 1, delete_used_events=True
        )
        super().__init__(effective, port)
        self._director = director

    def _deliver(self, window: Window) -> None:
        item: Window | CWEvent = window
        if self._passthrough:
            item = window.events[0]
        assert self.port is not None
        self._director._make_ready(self.port.actor, self.port.name, item)


class ThreadedCWFDirector(Director):
    """Simulated OS-thread execution of a continuous workflow."""

    model_name = "PNCWF-sim"

    def __init__(
        self,
        clock: VirtualClock,
        cost_model: CostModel,
        os_slice_us: int = 4_000,
        error_policy: "FaultPolicy | str" = FaultPolicy(propagate=True),
    ):
        super().__init__()
        try:
            policy = FaultPolicy.coerce(error_policy)
        except ResilienceError as error:
            raise DirectorError(str(error)) from None
        self.clock = clock
        self.cost_model = cost_model
        self.os_slice_us = os_slice_us
        #: Recovery configuration (same semantics as the SCWF director;
        #: defaults to fail-stop so simulation bugs surface loudly).
        self.fault_policy = policy
        #: Per-actor failure state + the dead-letter queue.
        self.supervisor = FaultSupervisor(policy, self.statistics)
        self.actor_errors: dict[str, int] = {}
        #: name -> deque of (port_name, item) ready for consumption.
        self._ready: dict[str, deque] = {}
        self._rotation: deque[str] = deque()
        self._timed_receivers: list[_SimReadyReceiver] = []
        self._sync_charge = 0
        self.context_switches = 0
        self.total_internal_firings = 0

    @property
    def error_policy(self) -> str:
        """Legacy string view of :attr:`fault_policy` (back-compat)."""
        return self.fault_policy.alias

    @property
    def dead_letters(self):
        """The supervisor's dead-letter queue (convenience alias)."""
        return self.supervisor.dead_letters

    # ------------------------------------------------------------------
    def create_receiver(self, port: InputPort) -> Receiver:
        receiver = _SimReadyReceiver(port.window, self, port)
        if port.window is not None and port.window.measure.value == "time":
            self._timed_receivers.append(receiver)
        return receiver

    def initialize_all(self) -> None:
        super().initialize_all()
        workflow = self._require_attached()
        self._rotation = deque(workflow.actors.keys())
        for actor in workflow.actors.values():
            self._ready.setdefault(actor.name, deque())

    def current_time(self) -> int:
        return self.clock.now_us

    # ------------------------------------------------------------------
    def _make_ready(self, actor: Actor, port_name: str, item) -> None:
        self._ready[actor.name].append((port_name, item))
        self.statistics.record_input(actor, 1, self.clock.now_us)

    def on_emit(self, actor: Actor, port_name: str, event) -> None:
        # Every queue put pays the blocking-queue synchronization cost
        # (lock + notify per destination receiver), charged to the thread
        # currently holding the (simulated) CPU.
        destinations = len(actor.output(port_name).outgoing)
        self._sync_charge += self.cost_model.sync_per_event_us * max(
            destinations, 1
        )
        super().on_emit(actor, port_name, event)

    # ------------------------------------------------------------------
    def _runnable(self, actor: Actor, now: int) -> bool:
        if actor.is_source:
            assert isinstance(actor, SourceActor)
            return actor.pending_arrivals(now) > 0
        return bool(self._ready[actor.name])

    def run_iteration(self) -> tuple[int, int]:
        """One simulated OS scheduling round over the runnable threads.

        Returns ``(internal_firings, source_emissions)`` like the SCWF
        director so the same :class:`SimulationRuntime` drives both.
        """
        workflow = self._require_attached()
        internal = 0
        emitted = 0
        served_any = True
        # One pass over the rotation; each runnable thread gets one slice.
        for _ in range(len(self._rotation)):
            name = self._rotation[0]
            self._rotation.rotate(-1)
            actor = workflow.actors[name]
            if not self._runnable(actor, self.clock.now_us):
                continue
            self.context_switches += 1
            self.clock.advance(self.cost_model.context_switch_us)
            fired, pumped = self._run_slice(actor)
            internal += fired
            emitted += pumped
        return internal, emitted

    def _run_slice(self, actor: Actor) -> tuple[int, int]:
        """The thread holds the CPU until its slice ends or it blocks."""
        slice_left = self.os_slice_us
        internal = 0
        emitted = 0
        while slice_left > 0 and self._runnable(actor, self.clock.now_us):
            if actor.is_source:
                cost, count = self._fire_source(actor)
                emitted += count
            else:
                cost, fired = self._fire_internal(actor)
                internal += 1 if fired else 0
            slice_left -= cost
        self.total_internal_firings += internal
        return internal, emitted

    def _fire_source(self, source: SourceActor) -> tuple[int, int]:
        ctx = self.make_context(source, self.clock.now_us)
        self._sync_charge = 0
        saved_limit = source.batch_limit
        source.batch_limit = 1  # a blocking thread emits one read at a time
        try:
            count = source.pump(ctx)
        finally:
            source.batch_limit = saved_limit
        ctx.close()
        cost = self.cost_model.source_cost(source, count) + self._sync_charge
        self.clock.advance(cost)
        self.statistics.record_invocation(source, cost)
        return cost, count

    def _fire_internal(self, actor: Actor) -> tuple[int, bool]:
        port_name, item = self._ready[actor.name].popleft()
        supervisor = self.supervisor
        if supervisor.is_quarantined(actor.name):
            # Open circuit: the item bypasses execution entirely.
            supervisor.drop_quarantined(
                actor, port_name, item, self.clock.now_us
            )
            self.actor_errors[actor.name] = (
                self.actor_errors.get(actor.name, 0) + 1
            )
            cost = self.cost_model.sync_per_event_us  # the wasted get()
            self.clock.advance(cost)
            return cost, False
        total_cost = 0
        fired = False
        attempt = 0
        while True:
            ctx = self.make_context(actor, self.clock.now_us)
            ctx.stage(port_name, item)
            self._sync_charge = self.cost_model.sync_per_event_us  # the get()
            try:
                if actor.prefire(ctx):
                    actor.fire(ctx)
                    actor.postfire(ctx)
                    fired = True
                ctx.close()
                cost = (
                    self.cost_model.invocation_cost(actor, ctx)
                    + self._sync_charge
                )
                self.clock.advance(cost)
                total_cost += cost
                self.statistics.record_invocation(actor, cost)
                supervisor.on_success(actor)
                break
            except Exception as error:
                # Fault barrier: discard partial emissions, charge the
                # cheaper failure cost, let the supervisor decide.
                ctx.abort()
                ctx.close()
                attempt += 1
                decision = supervisor.on_failure(
                    actor, port_name, item, error, attempt, self.clock.now_us
                )
                if decision.action is FailureAction.PROPAGATE:
                    raise
                cost = (
                    self.cost_model.failure_cost(actor, ctx)
                    + self._sync_charge
                )
                self.clock.advance(cost)
                total_cost += cost
                if decision.action is FailureAction.RETRY:
                    # The thread sleeps through the backoff in engine time.
                    self.clock.advance(decision.backoff_us)
                    total_cost += decision.backoff_us
                    continue
                # Dead-lettered by the supervisor.
                self.actor_errors[actor.name] = (
                    self.actor_errors.get(actor.name, 0) + 1
                )
                fired = False
                break
        return total_cost, fired

    # ------------------------------------------------------------------
    # Runtime protocol (shared with the SCWF director)
    # ------------------------------------------------------------------
    def next_arrival_time(self) -> Optional[int]:
        workflow = self._require_attached()
        times = [
            arrival
            for source in workflow.sources
            if (arrival := source.next_arrival_time()) is not None
        ]
        return min(times, default=None)

    def next_window_deadline(self) -> Optional[int]:
        deadlines = []
        for receiver in self._timed_receivers:
            if receiver.spec.timeout is None:
                continue
            boundary = receiver.next_deadline()
            if boundary is not None:
                deadlines.append(boundary + receiver.spec.timeout)
        return min(deadlines, default=None)

    def fire_window_timeouts(self, now: int) -> int:
        produced = 0
        for receiver in self._timed_receivers:
            timeout = receiver.spec.timeout
            if timeout is None:
                continue
            boundary = receiver.next_deadline()
            if boundary is not None and boundary + timeout <= now:
                produced += receiver.force_timeout(now - timeout)
        return produced

    def backlog(self) -> int:
        return sum(len(queue) for queue in self._ready.values())

    def run_to_quiescence(self, now: int) -> int:
        self.clock.jump_to(now)
        total = 0
        while True:
            internal, emitted = self.run_iteration()
            total += internal
            if internal == 0 and emitted == 0:
                return total
