"""Declarative workflow descriptions.

Kepler separates the *specification* of a workflow from the model of
computation that runs it; this module gives the reproduction the same
property: a workflow is described as plain data (a dict, trivially
JSON/YAML-serializable apart from callables) and built into a live
:class:`~repro.core.workflow.Workflow` that any director can attach to.

Example::

    spec = {
        "name": "monitor",
        "actors": [
            {"name": "feed", "type": "source",
             "arrivals": [(0, 1.0), (1000, 2.0)]},
            {"name": "avg", "type": "map",
             "function": lambda values: sum(values) / len(values),
             "window": {"size": 4, "step": 1},
             "priority": 10},
            {"name": "out", "type": "sink"},
        ],
        "connections": [["feed", "avg"], ["avg", "out"]],
    }
    workflow = build_workflow(spec)

Custom actor classes register by name in an :class:`ActorRegistry` (or use
``"type": "class"`` with a ``class`` entry holding the actor class or its
dotted path).
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Optional

from .actors import Actor, FunctionActor, MapActor, SinkActor, SourceActor
from .exceptions import WorkflowError
from .windows import Measure, WindowSpec
from .workflow import Workflow

_MEASURES = {
    "tokens": Measure.TOKENS,
    "time": Measure.TIME,
    "waves": Measure.WAVES,
}


def window_from_spec(spec: dict[str, Any]) -> WindowSpec:
    """Build a :class:`WindowSpec` from its dict form."""
    try:
        size = spec["size"]
    except KeyError:
        raise WorkflowError("window spec needs a 'size'") from None
    measure_name = spec.get("measure", "tokens")
    measure = _MEASURES.get(measure_name)
    if measure is None:
        raise WorkflowError(
            f"unknown window measure {measure_name!r} "
            f"(expected one of {sorted(_MEASURES)})"
        )
    delete_used = spec.get("delete_used_events", False)
    # Tumbling defaults: time windows advance by their size, and so do
    # continuous-consumption windows (step must equal size there).
    default_step = (
        size if measure is Measure.TIME or delete_used else 1
    )
    return WindowSpec(
        size=size,
        step=spec.get("step", default_step),
        measure=measure,
        timeout=spec.get("timeout"),
        group_by=spec.get("group_by"),
        delete_used_events=delete_used,
    )


class ActorRegistry:
    """Maps ``type`` names in actor specs to builder callables."""

    def __init__(self):
        self._builders: dict[str, Callable[[dict], Actor]] = {}
        self.register("source", self._build_source)
        self.register("map", self._build_map)
        self.register("function", self._build_function)
        self.register("sink", self._build_sink)
        self.register("class", self._build_class)

    def register(self, name: str, builder: Callable[[dict], Actor]) -> None:
        self._builders[name] = builder

    def build(self, spec: dict[str, Any]) -> Actor:
        type_name = spec.get("type")
        builder = self._builders.get(type_name)
        if builder is None:
            raise WorkflowError(
                f"unknown actor type {type_name!r} "
                f"(registered: {sorted(self._builders)})"
            )
        actor = builder(spec)
        if "priority" in spec:
            actor.priority = int(spec["priority"])
        if "cost_us" in spec:
            actor.nominal_cost_us = int(spec["cost_us"])
        return actor

    # ------------------------------------------------------------------
    @staticmethod
    def _name_of(spec: dict[str, Any]) -> str:
        try:
            return spec["name"]
        except KeyError:
            raise WorkflowError("every actor spec needs a 'name'") from None

    def _build_source(self, spec: dict[str, Any]) -> Actor:
        source = SourceActor(
            self._name_of(spec),
            arrivals=spec.get("arrivals", []),
            batch_limit=spec.get("batch_limit"),
        )
        source.add_output(spec.get("output", "out"))
        return source

    def _window_of(self, spec: dict[str, Any]) -> Optional[WindowSpec]:
        window = spec.get("window")
        if window is None:
            return None
        if isinstance(window, WindowSpec):
            return window
        return window_from_spec(window)

    def _build_map(self, spec: dict[str, Any]) -> Actor:
        function = spec.get("function")
        if not callable(function):
            raise WorkflowError(
                f"map actor {spec.get('name')!r} needs a callable 'function'"
            )
        return MapActor(
            self._name_of(spec), function, window=self._window_of(spec)
        )

    def _build_function(self, spec: dict[str, Any]) -> Actor:
        function = spec.get("function")
        if not callable(function):
            raise WorkflowError(
                f"function actor {spec.get('name')!r} needs a callable "
                "'function'"
            )
        inputs = []
        for entry in spec.get("inputs", ["in"]):
            if isinstance(entry, dict):
                inputs.append(
                    (entry["name"], window_from_spec(entry["window"]))
                )
            else:
                inputs.append(entry)
        return FunctionActor(
            self._name_of(spec),
            function,
            inputs=tuple(inputs),
            outputs=tuple(spec.get("outputs", ["out"])),
        )

    def _build_sink(self, spec: dict[str, Any]) -> Actor:
        return SinkActor(self._name_of(spec), callback=spec.get("callback"))

    def _build_class(self, spec: dict[str, Any]) -> Actor:
        target = spec.get("class")
        if isinstance(target, str):
            module_name, _, class_name = target.rpartition(".")
            target = getattr(
                importlib.import_module(module_name), class_name
            )
        if not (isinstance(target, type) and issubclass(target, Actor)):
            raise WorkflowError(
                f"'class' actor {spec.get('name')!r} needs an Actor "
                "subclass or its dotted path"
            )
        kwargs = dict(spec.get("kwargs", {}))
        return target(self._name_of(spec), **kwargs)


def _parse_endpoint(endpoint: Any) -> tuple[str, Optional[str]]:
    """'actor' or 'actor.port' -> (actor, port or None)."""
    if isinstance(endpoint, (list, tuple)) and len(endpoint) == 2:
        return str(endpoint[0]), str(endpoint[1])
    text = str(endpoint)
    actor, _, port = text.partition(".")
    return actor, port or None


def build_workflow(
    spec: dict[str, Any],
    registry: Optional[ActorRegistry] = None,
) -> Workflow:
    """Build and validate a workflow from its declarative description."""
    registry = registry or ActorRegistry()
    workflow = Workflow(spec.get("name", "workflow"))
    for actor_spec in spec.get("actors", []):
        workflow.add(registry.build(actor_spec))

    def actor_of(name: str) -> Actor:
        actor = workflow.actors.get(name)
        if actor is None:
            raise WorkflowError(f"connection references unknown actor {name!r}")
        return actor

    for connection in spec.get("connections", []):
        if isinstance(connection, dict):
            source, sink = connection["from"], connection["to"]
        else:
            source, sink = connection
        src_name, src_port = _parse_endpoint(source)
        dst_name, dst_port = _parse_endpoint(sink)
        workflow.connect(
            actor_of(src_name),
            actor_of(dst_name),
            source_port=src_port,
            sink_port=dst_port,
        )
    for route in spec.get("expired", []):
        source, handler = route
        src_name, src_port = _parse_endpoint(source)
        dst_name, dst_port = _parse_endpoint(handler)
        workflow.connect_expired(
            actor_of(src_name),
            actor_of(dst_name),
            windowed_port=src_port,
            handler_port=dst_port,
        )
    workflow.validate()
    return workflow
