"""The Rate-Based scheduler: dynamic priorities and period buffering."""

import pytest

from repro.core.actors import MapActor, SinkActor, SourceActor
from repro.core.statistics import StatisticsRegistry
from repro.core.workflow import Workflow
from repro.stafilos.schedulers.rb import RateBasedScheduler
from repro.stafilos.states import ActorState


def attach():
    workflow = Workflow("w")
    source = SourceActor("src", arrivals=[(10, "x")])
    source.add_output("out")
    cheap = MapActor("cheap", lambda v: v)
    costly = MapActor("costly", lambda v: v)
    sink = SinkActor("sink")
    workflow.add_all([source, cheap, costly, sink])
    workflow.connect(source, cheap)
    workflow.connect(source, costly)
    workflow.connect(cheap, sink)
    workflow.connect(costly, sink)
    registry = StatisticsRegistry()
    scheduler = RateBasedScheduler(default_cost_us=100)
    scheduler.initialize(workflow, registry)
    return workflow, scheduler, registry, source, cheap, costly, sink


def enqueue(scheduler, actor, ts=0):
    from repro.core.events import CWEvent
    from repro.core.waves import WaveTag

    enqueue.counter = getattr(enqueue, "counter", 0) + 1
    scheduler.enqueue(
        actor, "in", CWEvent("v", ts, WaveTag.root(enqueue.counter))
    )


class TestPeriodBuffering:
    def test_midperiod_events_wait_for_rollover(self):
        _, scheduler, _, _, cheap, _, _ = attach()
        enqueue(scheduler, cheap)
        # Buffered: not processable, actor is WAITING (Table 2, RB row 2).
        assert scheduler.ready_count(cheap) == 0
        assert scheduler.state_of(cheap) is ActorState.WAITING
        scheduler.on_iteration_end(0)
        assert scheduler.ready_count(cheap) == 1
        assert scheduler.state_of(cheap) is ActorState.ACTIVE

    def test_no_events_anywhere_is_inactive(self):
        _, scheduler, _, _, cheap, _, _ = attach()
        assert scheduler.state_of(cheap) is ActorState.INACTIVE


class TestSourcesOncePerPeriod:
    def test_source_active_until_fired(self):
        _, scheduler, _, source, *_ = attach()
        assert scheduler.state_of(source) is ActorState.ACTIVE
        scheduler.on_actor_fire_end(source, 10, now=0)
        assert scheduler.state_of(source) is ActorState.WAITING
        scheduler.on_iteration_end(0)
        assert scheduler.state_of(source) is ActorState.ACTIVE

    def test_sources_not_specially_regulated(self):
        # RB's defining weakness in the paper: no interval scheduling.
        _, scheduler, _, source, cheap, _, _ = attach()
        enqueue(scheduler, cheap)
        scheduler.on_iteration_end(0)
        # Selection is purely by Pr(A); the source competes like anyone.
        candidates = [scheduler.get_next_actor()]
        assert candidates[0] is not None


class TestDynamicPriorities:
    def test_priority_is_global_selectivity_over_cost(self):
        _, scheduler, registry, _, cheap, costly, _ = attach()
        cheap_stats = registry.register(cheap)
        cheap_stats.record_invocation(10)
        cheap_stats.record_input(1, 0)
        cheap_stats.record_output(1, 0)
        costly_stats = registry.register(costly)
        costly_stats.record_invocation(10_000)
        costly_stats.record_input(1, 0)
        costly_stats.record_output(1, 0)
        scheduler.on_iteration_end(0)
        assert scheduler.priorities[cheap.name] > scheduler.priorities[
            costly.name
        ]

    def test_higher_rate_scheduled_first(self):
        _, scheduler, registry, _, cheap, costly, _ = attach()
        registry.register(cheap).record_invocation(10)
        registry.register(costly).record_invocation(10_000)
        enqueue(scheduler, cheap)
        enqueue(scheduler, costly)
        scheduler.on_iteration_end(0)
        assert scheduler.get_next_actor() is cheap

    def test_priorities_refreshed_each_period(self):
        _, scheduler, registry, _, cheap, _, _ = attach()
        before = dict(scheduler.priorities)
        registry.register(cheap).record_invocation(50_000)
        scheduler.on_iteration_end(0)
        assert scheduler.priorities[cheap.name] < before[cheap.name]

    def test_periods_counted(self):
        _, scheduler, *_ = attach()
        scheduler.on_iteration_end(0)
        assert scheduler.periods == 1


class TestTopologyMutation:
    """Regression: mutating the workflow after the scheduler started
    must flow into the next priority refresh — the cached
    ``Workflow.graph()`` is keyed on the structure version, which every
    ``add``/``connect`` bumps."""

    def test_new_actor_enters_priorities_next_period(self):
        from repro.core.actors import MapActor

        workflow, scheduler, registry, source, cheap, _, sink = attach()
        scheduler.on_iteration_end(0)
        assert "late" not in scheduler.priorities
        version = workflow._structure_version

        late = MapActor("late", lambda v: v)
        workflow.add(late)
        workflow.connect(source, late)
        workflow.connect(late, sink)
        assert workflow._structure_version > version

        scheduler.on_iteration_end(0)
        assert "late" in scheduler.priorities
        assert scheduler.priorities["late"] > 0.0

    def test_rewired_channel_changes_global_rates(self):
        """Re-connecting an actor re-aggregates its downstream path."""
        from repro.core.actors import SinkActor

        workflow, scheduler, registry, _, cheap, _, _ = attach()
        registry.register(cheap).record_invocation(10)
        scheduler.on_iteration_end(0)
        before = scheduler.priorities[cheap.name]

        # A second consumer doubles cheap's downstream fan-out, which
        # the global selectivity aggregation must observe.
        extra = SinkActor("extra")
        workflow.add(extra)
        workflow.connect(cheap.output_ports["out"], extra)
        scheduler.on_iteration_end(0)
        assert scheduler.priorities[cheap.name] != before
