"""Firing contexts: staging, reads, wave-stamped emission."""

import pytest

from repro.core.actors import Actor
from repro.core.context import FiringContext
from repro.core.events import CWEvent
from repro.core.exceptions import ActorError
from repro.core.waves import WaveGenerator, WaveTag
from repro.core.windows import Window


class Probe(Actor):
    def __init__(self):
        super().__init__("probe")
        self.add_input("in")
        self.add_output("out")

    def fire(self, ctx):
        pass


def collecting_context(actor, wave_generator=None):
    emitted = []

    def hook(owner, port, event):
        emitted.append((port, event))

    return FiringContext(actor, 50, hook, wave_generator), emitted


class TestStagingAndReads:
    def test_read_returns_staged_in_order(self):
        actor = Probe()
        ctx, _ = collecting_context(actor)
        first = CWEvent("a", 1, WaveTag.root(1))
        second = CWEvent("b", 2, WaveTag.root(2))
        ctx.stage("in", first)
        ctx.stage("in", second)
        assert ctx.read("in") is first
        assert ctx.read("in") is second
        assert ctx.read("in") is None

    def test_read_unknown_port_raises(self):
        actor = Probe()
        ctx, _ = collecting_context(actor)
        with pytest.raises(ActorError):
            ctx.read("nope")

    def test_read_value_unwraps_events(self):
        actor = Probe()
        ctx, _ = collecting_context(actor)
        ctx.stage("in", CWEvent("payload", 1, WaveTag.root(1)))
        assert ctx.read_value("in") == "payload"

    def test_staged_count_and_has_staged(self):
        actor = Probe()
        ctx, _ = collecting_context(actor)
        assert not ctx.has_staged()
        ctx.stage("in", CWEvent("a", 1, WaveTag.root(1)))
        assert ctx.staged_count("in") == 1
        assert ctx.has_staged("in")


class TestWaveStamping:
    def test_outputs_become_children_of_consumed_wave(self):
        actor = Probe()
        ctx, emitted = collecting_context(actor)
        ctx.stage("in", CWEvent("a", 30, WaveTag.root(4)))
        ctx.read("in")
        ctx.send("out", "r1")
        ctx.send("out", "r2")
        ctx.close()
        waves = [str(event.wave) for _, event in emitted]
        assert waves == ["4.1", "4.2"]
        assert [event.last_in_wave for _, event in emitted] == [False, True]

    def test_outputs_inherit_trigger_timestamp(self):
        actor = Probe()
        ctx, emitted = collecting_context(actor)
        ctx.stage("in", CWEvent("a", 30, WaveTag.root(4)))
        ctx.read("in")
        ctx.send("out", "r")
        ctx.close()
        assert emitted[0][1].timestamp == 30

    def test_window_read_adopts_newest_event_wave(self):
        actor = Probe()
        ctx, emitted = collecting_context(actor)
        events = [
            CWEvent("a", 10, WaveTag.root(1)),
            CWEvent("b", 20, WaveTag.root(2)),
        ]
        ctx.stage("in", Window(events))
        ctx.read("in")
        ctx.send("out", "r")
        ctx.close()
        assert emitted[0][1].wave.parent == WaveTag.root(2)
        assert emitted[0][1].timestamp == 20

    def test_source_emission_starts_new_wave(self):
        actor = Probe()
        generator = WaveGenerator()
        ctx, emitted = collecting_context(actor, generator)
        ctx.send("out", "fresh")
        ctx.close()
        event = emitted[0][1]
        assert event.wave.is_root()
        assert event.last_in_wave
        assert event.timestamp == 50  # context "now"

    def test_source_emission_without_generator_raises(self):
        actor = Probe()
        ctx, _ = collecting_context(actor, wave_generator=None)
        with pytest.raises(ActorError):
            ctx.send("out", "fresh")

    def test_send_unknown_port_raises(self):
        actor = Probe()
        ctx, _ = collecting_context(actor)
        with pytest.raises(ActorError):
            ctx.send("nope", 1)

    def test_explicit_timestamp_override(self):
        actor = Probe()
        ctx, emitted = collecting_context(actor, WaveGenerator())
        ctx.send("out", "x", timestamp=999)
        ctx.close()
        assert emitted[0][1].timestamp == 999

    def test_counters(self):
        actor = Probe()
        ctx, _ = collecting_context(actor, WaveGenerator())
        ctx.stage("in", CWEvent("a", 1, WaveTag.root(1)))
        ctx.read("in")
        ctx.send("out", "r")
        assert ctx.inputs_consumed == 1
        assert ctx.outputs_produced == 1
