"""repro.frontier — timestamp-frontier progress tracking.

Wave completion in the seed engine rests on the marked last-event of a
(sub-)wave arriving *in order* and on engine-time window-formation
timeouts — both break down for out-of-order sources and for sharded
runs where engine time is placement-dependent.  This subsystem reframes
progress as a *monotone frontier* over wave/timestamp tokens, following
the timestamp-token formulation of Lattuada & McSherry (see PAPERS.md):

* :class:`FrontierTracker` counts outstanding tokens per root wave-tag
  (incremented when an event enters flight, decremented when it is
  consumed, absorbed into window state, dead-lettered or dropped), so
  the frontier advances exactly when a wave's derivation tree drains —
  no reliance on mark order.
* :class:`Watermark` is the punctuation carrying an event-time bound
  ("no event with timestamp < ``up_to_us`` is still coming");
  :class:`BoundedDisorderWatermarks` and :class:`ExplicitWatermarks`
  generate them per source.
* :class:`LatenessPolicy` decides what happens to events arriving
  behind an already-applied frontier: drop them, side-output them to
  the expired route, or admit them within an allowed-lateness grace.

The tracker is ``Checkpointable`` (it round-trips through
``repro.checkpoint`` as the director's ``frontier`` component) and
observable (``frontier.advance`` / ``event.late`` trace events,
``frontier_*`` engine counters).
"""

from .lateness import LatenessPolicy
from .tracker import FrontierTracker
from .watermark import BoundedDisorderWatermarks, ExplicitWatermarks, Watermark

__all__ = [
    "BoundedDisorderWatermarks",
    "ExplicitWatermarks",
    "FrontierTracker",
    "LatenessPolicy",
    "Watermark",
]
