"""The pipelined shard data plane (``repro.shard.codec`` + coordinator).

Covers the transport rebuild end to end: codec round-trips (columnar
fast path, pickle-5 fallback, out-of-band buffers, a Hypothesis
property over arbitrary payloads), credit-based pipelining
(lockstep-vs-pipelined merged-trace equality at several in-flight
depths and codecs, frontier-close clamping, mid-run migration under a
deep window), adaptive chunk sizing, the columnar source fast path
(``SourceActor.feed_columns``), dead-worker error surfacing in
``ShardCoordinator._recv``, transport telemetry (trace events,
engine counters, Prometheus export) and the CLI/manifest plumbing of
the three new knobs.
"""

import pickle
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.actors import SourceActor
from repro.core.exceptions import ActorError, SimulationError
from repro.harness.cli import main
from repro.harness.configs import ExperimentConfig, SchedulerSpec
from repro.harness.experiment import checkpoint_meta, config_from_meta
from repro.linearroad.generator import (
    LinearRoadWorkload,
    US_PER_S,
    WorkloadConfig,
)
from repro.linearroad.types import PositionReport
from repro.linearroad.workflow import shard_key_fn
from repro.observability import export_prometheus, RecordingTracer, use_tracer
from repro.shard import (
    AdaptiveChunker,
    ColumnarBatch,
    decode_chunk,
    encode_chunk,
    partition_arrivals,
    run_sharded,
    run_single_canonical,
    ShardCoordinator,
    ShardMigration,
    ShardPlan,
)


def small_config(**overrides) -> ExperimentConfig:
    """A fast 4-expressway workload that stays un-backlogged."""
    workload = WorkloadConfig(
        duration_s=60, peak_rate=80, seed=1, l_rating=4.0
    )
    return ExperimentConfig(
        scheduler=SchedulerSpec(kind="FIFO"),
        workload=workload,
        seeds=(1,),
        **overrides,
    )


@pytest.fixture(scope="module")
def config() -> ExperimentConfig:
    return small_config()


@pytest.fixture(scope="module")
def single(config):
    """Canonical traces of the single-process oracle run."""
    return run_single_canonical(config, seed=1)


def lr_chunk(config, count=400):
    """A realistic per-worker chunk: LR report slices keyed by xway."""
    workload = LinearRoadWorkload(replace(config.workload, seed=1))
    slices = partition_arrivals(workload.arrivals(), shard_key_fn("xway"))
    return {group: items[:count] for group, items in slices.items()}


def normalize(decoded):
    """Decoded payload -> row lists, whatever each group's encoding."""
    return {
        group: rows.rows() if isinstance(rows, ColumnarBatch) else rows
        for group, rows in decoded.items()
    }


# ---------------------------------------------------------------------------
# Codec round-trips
# ---------------------------------------------------------------------------
class TestCodec:
    def test_struct_roundtrips_lr_chunk_columnar(self, config):
        chunk = lr_chunk(config)
        decoded = decode_chunk(encode_chunk(chunk, "struct"))
        # The homogeneous LR fast path decodes into columns, and the
        # round trip is repr-exact (the merge key compares repr).
        for group, rows in chunk.items():
            batch = decoded[group]
            assert isinstance(batch, ColumnarBatch)
            assert batch.rows() == rows
            assert list(map(repr, batch.values)) == [
                repr(value) for _, value in rows
            ]

    def test_struct_beats_pickle_on_lr_chunks(self, config):
        chunk = lr_chunk(config)
        blob = encode_chunk(chunk, "struct")
        assert len(blob) < len(pickle.dumps(chunk, protocol=5))

    def test_pickle_codec_roundtrips(self, config):
        chunk = lr_chunk(config, count=50)
        assert decode_chunk(encode_chunk(chunk, "pickle")) == chunk

    def test_empty_payloads(self):
        for codec in ("struct", "pickle"):
            assert decode_chunk(encode_chunk({}, codec)) == {}
            assert normalize(
                decode_chunk(encode_chunk({0: []}, codec))
            ) == {0: []}

    def test_mixed_chunk_takes_fallback_per_group(self, config):
        report = lr_chunk(config, count=1)[0][0][1]
        payload = {
            0: [(1, report), (2, report)],  # homogeneous -> columnar
            1: [(3, "late"), (4, None)],  # mixed -> pickled rows
        }
        decoded = decode_chunk(encode_chunk(payload, "struct"))
        assert isinstance(decoded[0], ColumnarBatch)
        assert isinstance(decoded[1], list)
        assert normalize(decoded) == payload

    def test_disorder_triples_roundtrip(self, config):
        rows = lr_chunk(config, count=20)[0]
        triples = [
            (ts + 5, value, ts) for ts, value in rows
        ]
        decoded = decode_chunk(encode_chunk({2: triples}, "struct"))
        assert decoded[2].event_ts is not None
        assert decoded[2].rows() == triples

    def test_int64_overflow_falls_back_to_pickle(self, config):
        report = lr_chunk(config, count=1)[0][0][1]
        payload = {0: [(2 ** 70, report)]}
        decoded = decode_chunk(encode_chunk(payload, "struct"))
        assert isinstance(decoded[0], list)
        assert decoded[0] == payload[0]

    def test_wide_report_field_falls_back(self):
        report = PositionReport(
            time=2 ** 40, car_id=1, speed=1.0, xway=0, lane=0,
            direction=0, segment=0, position=0,
        )
        payload = {0: [(5, report)]}
        assert normalize(
            decode_chunk(encode_chunk(payload, "struct"))
        ) == payload

    def test_rejects_unknown_codec_and_garbage(self):
        with pytest.raises(SimulationError):
            encode_chunk({}, "zstd")
        with pytest.raises(SimulationError):
            decode_chunk(b"not a chunk blob")

    def test_out_of_band_buffers_are_framed(self):
        payload = {"blob": [(1, _BlobValue(b"\xab" * 4096))]}
        for codec in ("struct", "pickle"):
            decoded = normalize(decode_chunk(encode_chunk(payload, codec)))
            assert decoded == payload


class _BlobValue:
    """A payload whose protocol-5 pickling exports out-of-band buffers."""

    def __init__(self, data):
        self.data = bytes(data)

    def __reduce_ex__(self, protocol):
        if protocol >= 5:
            return (_BlobValue, (pickle.PickleBuffer(self.data),))
        return (_BlobValue, (self.data,))

    def __eq__(self, other):
        return isinstance(other, _BlobValue) and self.data == other.data

    def __repr__(self):
        return f"_BlobValue({len(self.data)}B)"


_reports = st.builds(
    PositionReport,
    time=st.integers(),  # unbounded: exercises the int64/32 fallback
    car_id=st.integers(min_value=0, max_value=2 ** 31 - 1),
    speed=st.floats(allow_nan=False),
    xway=st.integers(min_value=0, max_value=10),
    lane=st.integers(min_value=0, max_value=4),
    direction=st.integers(min_value=0, max_value=1),
    segment=st.integers(min_value=0, max_value=99),
    position=st.integers(min_value=0, max_value=2 ** 30),
)
_values = st.one_of(
    _reports,
    st.integers(),
    st.text(max_size=8),
    st.binary(max_size=16),
    st.none(),
    st.tuples(st.integers(), st.text(max_size=4)),
)
_rows = st.one_of(
    st.tuples(st.integers(min_value=0, max_value=2 ** 62), _values),
    st.tuples(
        st.integers(min_value=0, max_value=2 ** 62),
        _values,
        st.integers(min_value=0, max_value=2 ** 62),
    ),
)
_payloads = st.dictionaries(
    st.one_of(st.integers(min_value=-3, max_value=3), st.text(max_size=4)),
    st.lists(_rows, max_size=12),
    max_size=4,
)


class TestCodecProperty:
    @settings(max_examples=120, deadline=None)
    @given(payload=_payloads, codec=st.sampled_from(["struct", "pickle"]))
    def test_roundtrip_is_exact(self, payload, codec):
        decoded = normalize(decode_chunk(encode_chunk(payload, codec)))
        assert decoded == payload
        # repr-exactness, group by group: the deterministic merge key
        # is ``(ts, repr(payload))``, so value-equality is not enough.
        for group, rows in payload.items():
            assert list(map(repr, decoded[group])) == list(map(repr, rows))


# ---------------------------------------------------------------------------
# Credit-based pipelining: output identity
# ---------------------------------------------------------------------------
class TestPipelinedIdentity:
    @pytest.mark.parametrize("inflight", [1, 2, 8])
    def test_lockstep_vs_pipelined_merges_identically(
        self, config, single, inflight
    ):
        result = run_sharded(
            config, seed=1, shards=2, max_inflight=inflight
        )
        assert result.toll_trace == single["toll"]
        assert result.accident_trace == single["accident"]
        assert result.tolls > 0

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("inflight", [1, 4])
    @pytest.mark.parametrize("codec", ["pickle", "struct"])
    def test_identity_matrix(self, config, single, workers, inflight, codec):
        result = run_sharded(
            config,
            seed=1,
            shards=workers,
            max_inflight=inflight,
            codec=codec,
        )
        assert result.toll_trace == single["toll"]
        assert result.accident_trace == single["accident"]

    def test_migration_under_deep_window(self, config, single):
        result = run_sharded(
            config,
            seed=1,
            shards=2,
            max_inflight=8,
            migrations=[ShardMigration(at_s=20, group=1, to_worker=0)],
        )
        assert result.migrations == [(20 * US_PER_S, 1, 1, 0)]
        assert result.toll_trace == single["toll"]
        assert result.accident_trace == single["accident"]

    def test_backlog_log_is_in_watermark_order(self, config):
        result = run_sharded(config, seed=1, shards=2, max_inflight=8)
        watermarks = [watermark for watermark, _ in result.backlog_log]
        assert watermarks == sorted(watermarks)
        assert len(watermarks) == len(set(watermarks))
        assert watermarks, "pipelined runs must still log telemetry"

    def test_rejects_bad_transport_knobs(self, config):
        with pytest.raises(SimulationError):
            ShardCoordinator(config, max_inflight=0)
        with pytest.raises(SimulationError):
            ShardCoordinator(config, codec="zstd")


class TestFrontierClosePipelining:
    def test_frontier_close_clamps_and_matches(self):
        config = replace(
            small_config(frontier="close"),
            workload=WorkloadConfig(
                duration_s=60, peak_rate=40, seed=1, l_rating=4.0,
                disorder_s=3.0,
            ),
        )
        oracle = run_sharded(config, seed=1, shards=1, max_inflight=1)
        for inflight, codec in ((4, "struct"), (8, "pickle")):
            result = run_sharded(
                config, seed=1, shards=2,
                max_inflight=inflight, codec=codec,
            )
            assert result.toll_trace == oracle.toll_trace
            assert result.accident_trace == oracle.accident_trace
            # The closure protocol needs round N's acks before chunk
            # N+1, so the window clamps to lockstep: one chunk per
            # worker in flight, whatever the requested depth.
            assert (
                result.transport["shard_peak_inflight"] <= result.workers
            )
            assert result.frontier_log == oracle.frontier_log


# ---------------------------------------------------------------------------
# Adaptive chunk sizing
# ---------------------------------------------------------------------------
class TestAdaptiveChunker:
    def test_widens_when_keeping_up(self):
        chunker = AdaptiveChunker(10)
        assert chunker.update(0) == 20
        assert chunker.update(0) == 40
        assert chunker.update(0) == 40  # clamped at base*4
        assert chunker.resizes == 2

    def test_narrows_under_backlog(self):
        chunker = AdaptiveChunker(10)
        assert chunker.update(1000) == 5
        assert chunker.update(1000) == 2
        assert chunker.update(1000) == 2  # clamped at base//4
        assert chunker.update(100) == 2  # between the watermarks: hold

    def test_validates_bounds(self):
        with pytest.raises(SimulationError):
            AdaptiveChunker(10, min_s=20)
        with pytest.raises(SimulationError):
            AdaptiveChunker(10, low=5, high=5)

    def test_adaptive_run_widens_grid_and_keeps_output(self, config, single):
        fixed = run_sharded(config, seed=1, shards=2, max_inflight=1)
        adaptive = run_sharded(
            config, seed=1, shards=2, max_inflight=1, adaptive_chunk=True
        )
        assert adaptive.toll_trace == single["toll"]
        assert adaptive.accident_trace == single["accident"]
        # The un-backlogged workload lets the interval widen, so the
        # run completes in fewer, bigger chunks than the fixed grid.
        assert len(adaptive.backlog_log) < len(fixed.backlog_log)


# ---------------------------------------------------------------------------
# Columnar source feeding
# ---------------------------------------------------------------------------
class TestFeedColumns:
    def test_feeds_without_row_lists(self):
        source = SourceActor("src")
        source.feed([(10, "a")])
        source.feed_columns((20, 30), ("b", "c"))
        assert source._pending == [(10, "a"), (20, "b"), (30, "c")]

    def test_triple_columns_for_disorder_sources(self):
        source = SourceActor("src", out_of_order=True, disorder_us=5)
        source.feed_columns((20, 30), ("b", "c"), (18, 27))
        assert source._pending == [(20, "b", 18), (30, "c", 27)]

    def test_unsorted_batch_falls_back_to_feed(self):
        source = SourceActor("src", out_of_order=True)
        source.feed_columns((30, 10), ("b", "a"))
        assert source._pending == [(10, "a"), (30, "b")]

    def test_strict_source_still_rejects_regressions(self):
        source = SourceActor("src")
        source.feed([(50, "x")])
        with pytest.raises(ActorError):
            source.feed_columns((10, 20), ("a", "b"))

    def test_empty_batch_is_a_noop(self):
        source = SourceActor("src")
        source.feed_columns((), ())
        assert source._pending == []


# ---------------------------------------------------------------------------
# Dead-worker surfacing (the _recv bugfix)
# ---------------------------------------------------------------------------
class TestDeadWorker:
    def test_killed_worker_raises_simulation_error(self, config):
        coordinator = ShardCoordinator(config, seed=1, shards=2)
        workload = LinearRoadWorkload(replace(config.workload, seed=1))
        slices = partition_arrivals(
            workload.arrivals(), shard_key_fn("xway")
        )
        plan = ShardPlan(slices.keys(), 2)
        coordinator.plan = plan
        try:
            coordinator._spawn(plan)
            victim = coordinator._procs[0]
            victim.terminate()
            victim.join(timeout=10)
            with pytest.raises(SimulationError) as excinfo:
                coordinator._recv(0, "ack")
            message = str(excinfo.value)
            assert "worker 0" in message
            assert "exit code" in message
        finally:
            for conn in coordinator._conns:
                try:
                    conn.send(("stop",))
                except (OSError, ValueError):
                    pass
            for process in coordinator._procs:
                process.join(timeout=10)
                if process.is_alive():
                    process.terminate()
            for conn in coordinator._conns:
                conn.close()


# ---------------------------------------------------------------------------
# Telemetry: trace events, counters, Prometheus
# ---------------------------------------------------------------------------
class TestTransportTelemetry:
    def test_encode_decode_trace_events(self, config):
        chunk = lr_chunk(config, count=10)
        with use_tracer(RecordingTracer()) as tracer:
            decode_chunk(encode_chunk(chunk, "struct", now_us=123))
        names = [record.name for record in tracer.records()]
        assert "shard.chunk.encode" in names
        assert "shard.chunk.decode" in names
        encode = next(
            record for record in tracer.records()
            if record.name == "shard.chunk.encode"
        )
        assert encode.ts == 123
        assert encode.args["bytes"] > 0
        assert encode.args["codec"] == "struct"

    def test_coordinator_emits_encode_events(self, config):
        coordinator = ShardCoordinator(config, seed=1, shards=2)
        with use_tracer(RecordingTracer()) as tracer:
            result = coordinator.run()
        assert result.tolls > 0
        assert any(
            record.name == "shard.chunk.encode"
            for record in tracer.records()
        )

    def test_counters_surface_via_snapshot_and_prometheus(self, config):
        coordinator = ShardCoordinator(
            config, seed=1, shards=2, max_inflight=4
        )
        result = coordinator.run()
        engine = coordinator.statistics.snapshot(0)["__engine__"]
        assert engine["shard_bytes_sent"] > 0
        assert engine["shard_chunks_sent"] > 0
        assert engine["shard_encode_us"] >= 0
        assert engine["shard_peak_inflight"] >= 2
        assert engine["shard_chunks_inflight"] == 0  # all drained
        assert result.transport == engine
        text = export_prometheus(coordinator.statistics, now_us=0)
        assert "repro_engine_shard_bytes_sent" in text
        assert "repro_engine_shard_chunks_inflight" in text
        assert "repro_engine_shard_encode_us" in text


# ---------------------------------------------------------------------------
# CLI + checkpoint-manifest plumbing
# ---------------------------------------------------------------------------
class TestPlumbing:
    def test_manifest_roundtrips_transport_knobs(self):
        config = small_config(
            shard_inflight=8, shard_codec="pickle", shard_adaptive_chunk=True
        )
        meta = checkpoint_meta(config, seed=1)
        rebuilt, seed = config_from_meta(meta)
        assert seed == 1
        assert rebuilt.shard_inflight == 8
        assert rebuilt.shard_codec == "pickle"
        assert rebuilt.shard_adaptive_chunk is True

    def test_old_manifests_default_transport_knobs(self):
        meta = checkpoint_meta(small_config(), seed=1)
        for key in (
            "shard_inflight", "shard_codec", "shard_adaptive_chunk"
        ):
            del meta[key]
        rebuilt, _ = config_from_meta(meta)
        assert rebuilt.shard_inflight == 4
        assert rebuilt.shard_codec == "struct"
        assert rebuilt.shard_adaptive_chunk is False

    def test_cli_transport_flags(self, capsys):
        code = main(
            [
                "--duration", "30", "--seeds", "1", "run", "fifo",
                "--shards", "2", "--shard-inflight", "8",
                "--shard-codec", "struct", "--shard-adaptive-chunk",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "transport:" in out
        assert "window 8/worker" in out

    def test_cli_rejects_bad_inflight(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "--duration", "30", "--seeds", "1", "run", "fifo",
                    "--shards", "2", "--shard-inflight", "0",
                ]
            )
