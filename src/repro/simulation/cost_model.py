"""The actor cost model of the virtual-time runtime.

Every actor invocation is charged a number of virtual microseconds:

    cost = base + per_input * inputs_consumed + per_output * outputs_produced

where ``base`` comes from the actor's ``nominal_cost_us`` (or the model
default), optionally perturbed by seeded multiplicative jitter so runs are
noisy-but-reproducible.  Source pumps are charged per emitted arrival.

The model also carries the calibrated **threaded-execution overheads** used
by the simulated PNCWF baseline: a context-switch penalty whenever the
simulated OS switches between actor threads and a synchronization penalty
per queue operation (lock/notify on every put/get).  DESIGN.md documents
the calibration: with the defaults the Linear Road pipeline saturates near
160 reports/s under STAFiLOS schedulers and near 120 reports/s under the
thread-based PNCWF — the capacity ratio the paper measured.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.actors import Actor, SourceActor
    from ..core.context import FiringContext


@dataclass
class CostModel:
    """Charges virtual microseconds for engine activity."""

    #: Default per-invocation base cost when the actor declares none.
    default_cost_us: int = 200
    #: Cost charged per staged input item consumed by a firing.
    per_input_us: int = 20
    #: Cost charged per event emitted by a firing.
    per_output_us: int = 30
    #: Cost per arrival emitted by a source pump.
    source_per_event_us: int = 50
    #: Fixed overhead of a director scheduling decision (one getNextActor).
    dispatch_overhead_us: int = 5
    #: Base cost of a firing attempt that raised (fault-barrier path):
    #: failed firings abort early, so they are charged this instead of the
    #: full invocation cost — drop/retry accounting must not inflate the
    #: actor's cost statistics.
    failure_cost_us: int = 50
    #: Simulated-OS context switch (PNCWF baseline only).
    context_switch_us: int = 120
    #: Per queue operation lock/notify overhead (PNCWF baseline only).
    sync_per_event_us: int = 60
    #: Global multiplier applied to every charge (capacity calibration).
    scale: float = 1.0
    #: Multiplicative jitter half-width (0.1 = +/-10%); 0 disables.
    jitter: float = 0.0
    seed: int = 7
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    def _jittered(self, cost: float) -> int:
        cost *= self.scale
        if self.jitter > 0:
            cost *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return max(1, int(round(cost)))

    def invocation_cost(self, actor: "Actor", ctx: "FiringContext") -> int:
        """Virtual cost of one internal actor firing."""
        base = (
            actor.nominal_cost_us
            if actor.nominal_cost_us is not None
            else self.default_cost_us
        )
        cost = (
            base
            + self.per_input_us * ctx.inputs_consumed
            + self.per_output_us * ctx.outputs_produced
        )
        return self._jittered(cost)

    def fast_invocation_base(self, actor: "Actor") -> Optional[int]:
        """Integer base cost when :meth:`invocation_cost` reduces to pure
        integer arithmetic for *actor*, else ``None``.

        With ``jitter == 0`` and ``scale == 1.0`` the per-firing charge
        is exactly ``base + per_input_us·inputs + per_output_us·outputs``
        (``_jittered`` multiplies by 1.0 and rounds the integer back to
        itself, with the same ``max(1, ·)`` floor).  The event-train fire
        loop uses this to charge each item without two method calls per
        firing; subclasses with different semantics are excluded by the
        exact-type check and fall back to the full path.
        """
        if (
            type(self) is not CostModel
            or self.jitter != 0
            or self.scale != 1.0
        ):
            return None
        return (
            actor.nominal_cost_us
            if actor.nominal_cost_us is not None
            else self.default_cost_us
        )

    def failure_cost(self, actor: "Actor", ctx: "FiringContext") -> int:
        """Virtual cost of a firing attempt that raised and was aborted.

        Deliberately *not* the invocation cost: the firing tore down
        mid-way, its partial emissions were discarded, and charging the
        full cost (or recording a full invocation) would inflate the
        actor's cost statistics — the feed of every QoS scheduler.
        """
        cost = self.failure_cost_us + self.per_input_us * ctx.inputs_consumed
        return self._jittered(cost)

    def source_cost(self, source: "SourceActor", emitted: int) -> int:
        """Virtual cost of a source pump that emitted *emitted* arrivals."""
        base = (
            source.nominal_cost_us
            if source.nominal_cost_us is not None
            else self.default_cost_us // 4
        )
        return self._jittered(base + self.source_per_event_us * emitted)

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        """Snapshot the jitter RNG state (Checkpointable protocol).

        The seeded RNG is the model's only mutable state; capturing it
        with :meth:`random.Random.getstate` (a pure observation — no
        draw) is what makes a resumed run charge the exact same jittered
        costs as the uninterrupted one.
        """
        return {"rng_state": self._rng.getstate()}

    def state_restore(self, state: dict) -> None:
        """Re-apply a dumped RNG state (Checkpointable protocol)."""
        self._rng.setstate(state["rng_state"])

    def clone(self, **overrides) -> "CostModel":
        """A copy with some fields replaced (ablation sweeps)."""
        from dataclasses import asdict

        params = {
            key: value
            for key, value in asdict(self).items()
            if not key.startswith("_")
        }
        params.update(overrides)
        return CostModel(**params)
