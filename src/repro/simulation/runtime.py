"""The virtual-time simulation runtime.

Drives an iterative continuous-workflow director (the SCWF director, or the
simulated thread-based baseline) against a virtual clock: iterations run
back-to-back while there is work, and when the engine goes idle the clock
jumps straight to the next external arrival or timed-window timeout.

The runtime is duck-typed over the director: it needs ``run_iteration()``,
``next_arrival_time()``, ``next_window_deadline()``,
``fire_window_timeouts(now)``, ``initialize_all()`` and ``wrapup_all()``.
"""

from __future__ import annotations

from typing import Optional

from ..core.exceptions import SimulationError
from ..core.timekeeper import US_PER_S
from ..observability import tracer as _obs
from .clock import VirtualClock


class SimulationRuntime:
    """Runs one workflow + director combination to a virtual-time horizon."""

    def __init__(self, director, clock: VirtualClock, checkpointer=None):
        self.director = director
        self.clock = clock
        self.iterations_run = 0
        #: Optional :class:`~repro.checkpoint.EngineCheckpointer`; when
        #: set, the loop offers it every *productive* iteration end as a
        #: snapshot point (a quiescent wave boundary by construction).
        self.checkpointer = checkpointer

    def run(
        self,
        until_s: float,
        drain: bool = False,
        max_iterations: int = 50_000_000,
    ) -> int:
        """Simulate until the horizon (seconds of virtual time).

        With ``drain=True`` the runtime keeps iterating past the horizon
        until all admitted work is processed (no new arrivals are admitted —
        sources hold arrivals stamped later than the horizon only if the
        workload put them there).  Returns the number of director
        iterations executed.
        """
        horizon_us = int(until_s * US_PER_S)
        director = self.director
        if not getattr(director, "_initialized", False):
            director.initialize_all()
        iterations = 0
        while True:
            if iterations >= max_iterations:
                raise SimulationError(
                    f"simulation exceeded {max_iterations} iterations "
                    "before the horizon; runaway workload?"
                )
            now = self.clock.now_us
            if now >= horizon_us and not drain:
                break
            # Fire any timed-window timeouts that are due before working.
            deadline = director.next_window_deadline()
            if deadline is not None and deadline <= now:
                director.fire_window_timeouts(now)
            internal, emitted = director.run_iteration()
            iterations += 1
            if internal or emitted:
                # Snapshot only after *productive* iterations: the engine
                # sits at a quiescent wave boundary here, and skipping
                # idle iterations keeps a checkpointing run's iteration
                # sequence identical to an uncheckpointed one.
                if self.checkpointer is not None:
                    self.checkpointer.maybe_checkpoint(self.clock.now_us)
                continue
            # Idle: let the frontier close any passed panes first — a
            # closure is productive work the next iteration dispatches.
            consult = getattr(director, "consult_frontier", None)
            if consult is not None and consult():
                continue
            # Fast-forward to whatever happens next.
            next_times = []
            arrival = director.next_arrival_time()
            if arrival is not None:
                next_times.append(arrival)
            deadline = director.next_window_deadline()
            if deadline is not None:
                next_times.append(deadline)
            if not next_times:
                break  # fully drained: no arrivals, no pending windows
            next_time = min(next_times)
            if next_time >= horizon_us and not drain:
                self.clock.jump_to(horizon_us)
                break
            if next_time <= self.clock.now_us:
                # A due timeout produced nothing schedulable; nudge forward
                # to guarantee progress.
                self.clock.advance(1)
            else:
                if _obs.ENABLED:
                    _obs._TRACER.instant(
                        "runtime.idle_jump",
                        now,
                        to_us=next_time,
                        slept_us=next_time - now,
                    )
                self.clock.jump_to(next_time)
        self.iterations_run += iterations
        return iterations

    def run_and_wrapup(self, until_s: float, drain: bool = False) -> int:
        iterations = self.run(until_s, drain=drain)
        self.director.wrapup_all()
        return iterations
