"""Recursive-descent parser for the SQL subset.

Grammar highlights (enough for the Linear Road workflow and general use):

* ``SELECT [DISTINCT] items FROM table [AS alias] [WHERE] [GROUP BY]
  [HAVING] [ORDER BY] [LIMIT [OFFSET]]`` — single-table, with scalar/
  EXISTS/IN subqueries anywhere an expression is allowed (correlated
  subqueries resolve outer columns through the evaluation scope chain);
* ``INSERT [OR REPLACE] INTO t (cols) VALUES (...), (...)``;
* ``UPDATE t SET c = e [, ...] [WHERE ...]``;
* ``DELETE FROM t [WHERE ...]``;
* ``CREATE TABLE [IF NOT EXISTS] t (col TYPE [NOT NULL], ...,
  PRIMARY KEY (a, b))``; ``DROP TABLE [IF EXISTS] t``;
  ``CREATE INDEX name ON t (cols)``;
* expressions with standard precedence, ``CASE``/``WHEN``, parameter
  markers ``$name``/``:name``, and the aggregate/scalar functions of
  :mod:`repro.sqldb.functions`.
"""

from __future__ import annotations

from typing import Optional

from . import ast
from .errors import SQLSyntaxError
from .lexer import Token, TokenType, tokenize

_TYPE_ALIASES = {
    "INT": "INTEGER",
    "INTEGER": "INTEGER",
    "FLOAT": "FLOAT",
    "REAL": "FLOAT",
    "TEXT": "TEXT",
    "VARCHAR": "TEXT",
    "BOOL": "BOOLEAN",
    "BOOLEAN": "BOOLEAN",
}

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement (a trailing ``;`` is tolerated)."""
    return _Parser(tokenize(sql)).parse_statement()


def parse_expression(sql: str) -> ast.Expression:
    """Parse a standalone expression (used by tests and tools)."""
    parser = _Parser(tokenize(sql))
    expr = parser.expression()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def check_keyword(self, *names: str) -> bool:
        return self.current.is_keyword(*names)

    def accept_keyword(self, *names: str) -> bool:
        if self.check_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> Token:
        if not self.check_keyword(name):
            raise SQLSyntaxError(
                f"expected {name}, found {self.current.text!r}",
                self.current.position,
            )
        return self.advance()

    def accept_operator(self, *ops: str) -> Optional[str]:
        token = self.current
        if token.type is TokenType.OPERATOR and token.text in ops:
            self.advance()
            return token.text
        return None

    def expect_operator(self, op: str) -> None:
        if self.accept_operator(op) is None:
            raise SQLSyntaxError(
                f"expected {op!r}, found {self.current.text!r}",
                self.current.position,
            )

    def expect_identifier(self) -> str:
        token = self.current
        if token.type is TokenType.IDENT:
            self.advance()
            return token.text
        # Unreserved keywords can double as identifiers (e.g. a column
        # named "key"): accept aggregate names and type names.
        if token.type is TokenType.KEYWORD and token.text in _TYPE_ALIASES:
            self.advance()
            return token.text
        raise SQLSyntaxError(
            f"expected identifier, found {token.text!r}", token.position
        )

    def expect_eof(self) -> None:
        self.accept_operator(";")
        if self.current.type is not TokenType.EOF:
            raise SQLSyntaxError(
                f"unexpected trailing input {self.current.text!r}",
                self.current.position,
            )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        token = self.current
        if token.is_keyword("SELECT"):
            statement: ast.Statement = self.select()
        elif token.is_keyword("INSERT", "REPLACE"):
            statement = self.insert()
        elif token.is_keyword("UPDATE"):
            statement = self.update()
        elif token.is_keyword("DELETE"):
            statement = self.delete()
        elif token.is_keyword("CREATE"):
            statement = self.create()
        elif token.is_keyword("DROP"):
            statement = self.drop()
        else:
            raise SQLSyntaxError(
                f"unsupported statement start {token.text!r}", token.position
            )
        self.expect_eof()
        return statement

    def select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = [self.select_item()]
        while self.accept_operator(","):
            items.append(self.select_item())
        table = None
        joins: list[ast.Join] = []
        if self.accept_keyword("FROM"):
            table = self.table_ref()
            joins = self.join_clauses()
        where = self.expression() if self.accept_keyword("WHERE") else None
        group_by: list[ast.Expression] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.expression())
            while self.accept_operator(","):
                group_by.append(self.expression())
        having = self.expression() if self.accept_keyword("HAVING") else None
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.order_item())
            while self.accept_operator(","):
                order_by.append(self.order_item())
        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self.expression()
            if self.accept_keyword("OFFSET"):
                offset = self.expression()
        return ast.Select(
            tuple(items),
            table,
            tuple(joins),
            where,
            tuple(group_by),
            having,
            tuple(order_by),
            limit,
            offset,
            distinct,
        )

    def join_clauses(self) -> list[ast.Join]:
        joins: list[ast.Join] = []
        while True:
            if self.accept_operator(","):
                joins.append(ast.Join(self.table_ref(), None, "CROSS"))
                continue
            if self.accept_keyword("CROSS"):
                self.expect_keyword("JOIN")
                joins.append(ast.Join(self.table_ref(), None, "CROSS"))
                continue
            kind = None
            if self.accept_keyword("LEFT"):
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                kind = "LEFT"
            elif self.accept_keyword("INNER"):
                self.expect_keyword("JOIN")
                kind = "INNER"
            elif self.accept_keyword("JOIN"):
                kind = "INNER"
            if kind is None:
                return joins
            table = self.table_ref()
            condition = None
            if self.accept_keyword("ON"):
                condition = self.expression()
            joins.append(ast.Join(table, condition, kind))

    def select_item(self) -> ast.SelectItem:
        if self.accept_operator("*"):
            return ast.SelectItem(None)
        # "t.*" needs lookahead: IDENT "." "*"
        if (
            self.current.type is TokenType.IDENT
            and self._peek_is_operator(1, ".")
            and self._peek_is_operator(2, "*")
        ):
            table = self.expect_identifier()
            self.expect_operator(".")
            self.expect_operator("*")
            return ast.SelectItem(None, table_star=table)
        expr = self.expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self._alias_name()
        elif self.current.type is TokenType.IDENT:
            alias = self.expect_identifier()
        elif self.current.type is TokenType.STRING:
            alias = self.advance().text
        return ast.SelectItem(expr, alias)

    def _alias_name(self) -> str:
        if self.current.type is TokenType.STRING:
            return self.advance().text
        return self.expect_identifier()

    def _peek_is_operator(self, ahead: int, op: str) -> bool:
        index = self._index + ahead
        if index >= len(self._tokens):
            return False
        token = self._tokens[index]
        return token.type is TokenType.OPERATOR and token.text == op

    def table_ref(self) -> ast.TableRef:
        name = self.expect_identifier()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self.current.type is TokenType.IDENT:
            alias = self.expect_identifier()
        return ast.TableRef(name, alias)

    def order_item(self) -> ast.OrderItem:
        expr = self.expression()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr, ascending)

    def insert(self) -> ast.Insert:
        or_replace = False
        if self.accept_keyword("REPLACE"):
            or_replace = True
        else:
            self.expect_keyword("INSERT")
            if self.accept_keyword("OR"):
                self.expect_keyword("REPLACE")
                or_replace = True
        self.expect_keyword("INTO")
        table = self.expect_identifier()
        columns: list[str] = []
        if self.accept_operator("("):
            columns.append(self.expect_identifier())
            while self.accept_operator(","):
                columns.append(self.expect_identifier())
            self.expect_operator(")")
        self.expect_keyword("VALUES")
        rows = [self._value_row()]
        while self.accept_operator(","):
            rows.append(self._value_row())
        return ast.Insert(table, tuple(columns), tuple(rows), or_replace)

    def _value_row(self) -> tuple[ast.Expression, ...]:
        self.expect_operator("(")
        values = [self.expression()]
        while self.accept_operator(","):
            values.append(self.expression())
        self.expect_operator(")")
        return tuple(values)

    def update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier()
        self.expect_keyword("SET")
        assignments = [self._assignment()]
        while self.accept_operator(","):
            assignments.append(self._assignment())
        where = self.expression() if self.accept_keyword("WHERE") else None
        return ast.Update(table, tuple(assignments), where)

    def _assignment(self) -> ast.Assignment:
        column = self.expect_identifier()
        self.expect_operator("=")
        return ast.Assignment(column, self.expression())

    def delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier()
        where = self.expression() if self.accept_keyword("WHERE") else None
        return ast.Delete(table, where)

    def create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("INDEX"):
            name = self.expect_identifier()
            self.expect_keyword("ON")
            table = self.expect_identifier()
            self.expect_operator("(")
            columns = [self.expect_identifier()]
            while self.accept_operator(","):
                columns.append(self.expect_identifier())
            self.expect_operator(")")
            return ast.CreateIndex(name, table, tuple(columns))
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_identifier()
        self.expect_operator("(")
        columns: list[ast.ColumnDef] = []
        primary_key: tuple[str, ...] = ()
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                self.expect_operator("(")
                keys = [self.expect_identifier()]
                while self.accept_operator(","):
                    keys.append(self.expect_identifier())
                self.expect_operator(")")
                primary_key = tuple(keys)
            else:
                columns.append(self._column_def())
            if not self.accept_operator(","):
                break
        self.expect_operator(")")
        return ast.CreateTable(name, tuple(columns), primary_key, if_not_exists)

    def _column_def(self) -> ast.ColumnDef:
        name = self.expect_identifier()
        token = self.current
        if token.type is not TokenType.KEYWORD or token.text not in _TYPE_ALIASES:
            raise SQLSyntaxError(
                f"unknown column type {token.text!r}", token.position
            )
        self.advance()
        type_name = _TYPE_ALIASES[token.text]
        if token.text == "VARCHAR" and self.accept_operator("("):
            self.advance()  # the length; stored types are unconstrained
            self.expect_operator(")")
        not_null = False
        if self.accept_keyword("NOT"):
            self.expect_keyword("NULL")
            not_null = True
        return ast.ColumnDef(name, type_name, not_null)

    def drop(self) -> ast.DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return ast.DropTable(self.expect_identifier(), if_exists)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def expression(self) -> ast.Expression:
        return self.or_expr()

    def or_expr(self) -> ast.Expression:
        left = self.and_expr()
        while self.accept_keyword("OR"):
            left = ast.Binary("OR", left, self.and_expr())
        return left

    def and_expr(self) -> ast.Expression:
        left = self.not_expr()
        while self.accept_keyword("AND"):
            left = ast.Binary("AND", left, self.not_expr())
        return left

    def not_expr(self) -> ast.Expression:
        if self.accept_keyword("NOT"):
            return ast.Unary("NOT", self.not_expr())
        return self.predicate()

    def predicate(self) -> ast.Expression:
        left = self.additive()
        negated = False
        if self.check_keyword("NOT"):
            # NOT IN / NOT BETWEEN / NOT LIKE
            save = self._index
            self.advance()
            if self.check_keyword("IN", "BETWEEN", "LIKE"):
                negated = True
            else:
                self._index = save
                return left
        if self.accept_keyword("IS"):
            is_negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNull(left, is_negated)
        if self.accept_keyword("IN"):
            self.expect_operator("(")
            if self.check_keyword("SELECT"):
                select = self.select()
                self.expect_operator(")")
                return ast.InSubquery(left, select, negated)
            items = [self.expression()]
            while self.accept_operator(","):
                items.append(self.expression())
            self.expect_operator(")")
            return ast.InList(left, tuple(items), negated)
        if self.accept_keyword("BETWEEN"):
            low = self.additive()
            self.expect_keyword("AND")
            high = self.additive()
            return ast.Between(left, low, high, negated)
        if self.accept_keyword("LIKE"):
            return ast.Like(left, self.additive(), negated)
        op = None
        token = self.current
        if token.type is TokenType.OPERATOR and token.text in _COMPARISONS:
            op = self.advance().text
            if op == "!=":
                op = "<>"
            return ast.Binary(op, left, self.additive())
        return left

    def additive(self) -> ast.Expression:
        left = self.multiplicative()
        while True:
            op = self.accept_operator("+", "-", "||")
            if op is None:
                return left
            left = ast.Binary(op, left, self.multiplicative())

    def multiplicative(self) -> ast.Expression:
        left = self.unary()
        while True:
            op = self.accept_operator("*", "/", "%")
            if op is None:
                return left
            left = ast.Binary(op, left, self.unary())

    def unary(self) -> ast.Expression:
        op = self.accept_operator("-", "+")
        if op is not None:
            return ast.Unary(op, self.unary())
        return self.primary()

    def primary(self) -> ast.Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.text
            value = float(text) if any(c in text for c in ".eE") else int(text)
            return ast.Literal(value)
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.text)
        if token.type is TokenType.PARAM:
            self.advance()
            return ast.Param(token.text)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("CASE"):
            return self.case_expr()
        if token.is_keyword("EXISTS"):
            self.advance()
            self.expect_operator("(")
            select = self.select()
            self.expect_operator(")")
            return ast.ExistsSubquery(select)
        if token.is_keyword("COUNT", "SUM", "AVG", "MIN", "MAX"):
            self.advance()
            return self._function_call(token.text)
        if token.type is TokenType.OPERATOR and token.text == "(":
            self.advance()
            if self.check_keyword("SELECT"):
                select = self.select()
                self.expect_operator(")")
                return ast.ScalarSubquery(select)
            expr = self.expression()
            self.expect_operator(")")
            return expr
        if token.type is TokenType.IDENT:
            name = self.expect_identifier()
            if self.current.type is TokenType.OPERATOR and self.current.text == "(":
                return self._function_call(name.upper())
            if self.accept_operator("."):
                column = self.expect_identifier()
                return ast.ColumnRef(column, table=name)
            return ast.ColumnRef(name)
        raise SQLSyntaxError(
            f"unexpected token {token.text!r} in expression", token.position
        )

    def _function_call(self, name: str) -> ast.FunctionCall:
        self.expect_operator("(")
        if self.accept_operator("*"):
            self.expect_operator(")")
            return ast.FunctionCall(name, (), star=True)
        distinct = self.accept_keyword("DISTINCT")
        args: list[ast.Expression] = []
        if not (
            self.current.type is TokenType.OPERATOR and self.current.text == ")"
        ):
            args.append(self.expression())
            while self.accept_operator(","):
                args.append(self.expression())
        self.expect_operator(")")
        return ast.FunctionCall(name, tuple(args), distinct=distinct)

    def case_expr(self) -> ast.Case:
        self.expect_keyword("CASE")
        operand = None
        if not self.check_keyword("WHEN"):
            operand = self.expression()
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        while self.accept_keyword("WHEN"):
            condition = self.expression()
            self.expect_keyword("THEN")
            whens.append((condition, self.expression()))
        if not whens:
            raise SQLSyntaxError(
                "CASE needs at least one WHEN", self.current.position
            )
        else_result = None
        if self.accept_keyword("ELSE"):
            else_result = self.expression()
        self.expect_keyword("END")
        return ast.Case(tuple(whens), else_result, operand)
