"""Wave-aligned checkpointing: survive a crash, resume bit-identically.

A continuous workflow is always mid-stream, so "rerun it from the
start" is not a recovery strategy.  This example runs a small pipeline
under the SCWF director with periodic snapshots into a
``DirectoryCheckpointStore``, simulates a hard crash half-way through,
then rebuilds a **fresh** engine, restores the newest snapshot onto it
and finishes the run.  The resumed sink output is identical to an
uninterrupted run: snapshots are taken at quiescent wave boundaries and
capture queues, window panes, wave/event counters, scheduler state and
source cursors, so the resumed engine cannot tell it ever died.

Run:  python examples/checkpoint_resume.py
"""

import tempfile

from repro import (
    CostModel,
    DirectoryCheckpointStore,
    EngineCheckpointer,
    MapActor,
    restore_latest,
    RRScheduler,
    SCWFDirector,
    SimulationRuntime,
    SinkActor,
    SourceActor,
    VirtualClock,
    Workflow,
)


def build_engine():
    """A deterministic source -> square -> sink pipeline.

    Checkpoint/restore splits the engine into *structure* (this
    function: graph, lambdas, scheduler, seeds) and *data* (the
    snapshot payload).  Restore rebuilds the structure by calling the
    same builder, then applies the data in place.
    """
    workflow = Workflow("meter-feed")
    source = SourceActor(
        "meter", arrivals=[(i * 50_000, i) for i in range(40)]
    )
    source.add_output("out")
    square = MapActor("square", lambda v: v * v)
    sink = SinkActor("dashboard")
    workflow.add_all([source, square, sink])
    workflow.connect(source, square)
    workflow.connect(square, sink)
    clock = VirtualClock()
    director = SCWFDirector(
        RRScheduler(10_000), clock, CostModel(seed=42)
    )
    director.attach(workflow)
    return director, clock, sink


def main() -> None:
    # --- reference: the run nothing ever happens to -------------------
    director, clock, sink = build_engine()
    SimulationRuntime(director, clock).run(3.0)
    reference = list(sink.values)
    print(f"uninterrupted run produced {len(reference)} results")

    checkpoint_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
    store = DirectoryCheckpointStore(checkpoint_dir, retain=3)

    # --- the run that crashes -----------------------------------------
    director, clock, sink = build_engine()
    checkpointer = EngineCheckpointer(
        director, store, every_us=500_000  # snapshot every 0.5 engine-s
    )
    SimulationRuntime(director, clock, checkpointer=checkpointer).run(1.0)
    print(
        f"'crash' after 1.0 engine-seconds: {len(sink.values)} results "
        f"so far, {len(store.manifests())} snapshot(s) on disk"
    )
    del director, clock, sink  # the process is gone

    # --- recovery: fresh structure + newest snapshot's data -----------
    director, clock, sink = build_engine()
    director.initialize_all()
    manifest = restore_latest(director, store)
    print(
        f"restored checkpoint {manifest.checkpoint_id} "
        f"(engine t={manifest.engine_time_us}us, "
        f"{manifest.payload_bytes} bytes)"
    )
    SimulationRuntime(director, clock).run(3.0)
    print(f"resumed run finished with {len(sink.values)} results")

    assert sink.values == reference, "resume must be bit-identical"
    print("resumed output is identical to the uninterrupted run")


if __name__ == "__main__":
    main()
