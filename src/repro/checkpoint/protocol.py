"""The ``Checkpointable`` protocol — the contract every engine component
implements to participate in wave-aligned snapshots.

A checkpoint of a continuous workflow cannot be a naive ``pickle`` of the
engine: directors, workflows, ports and receivers are laced with lambdas
(window ``group_by`` functions, :class:`~repro.core.actors.FunctionActor`
bodies, ready-queue size listeners) and threading primitives, none of
which serialize.  Instead the engine splits *structure* from *data*:

* **Structure** — the workflow graph, actor functions, window specs,
  scheduler policy — is rebuilt from the original builder (the same code
  + seed that built the crashed run).
* **Data** — queue contents, window operator group states, source
  cursors, RNG states, statistics, wave counters — is captured by each
  component's :meth:`Checkpointable.state_dump` and re-applied **in
  place** on the freshly rebuilt component by
  :meth:`Checkpointable.state_restore`.

``state_dump`` must be a *pure observation*: it may copy containers but
must never consume counters, draw RNG numbers, or trim rate windows —
a run that checkpoints must stay bit-identical to one that does not.
``state_restore`` must be idempotent: applying the same dump twice
leaves the component in the same state.

The dump value itself must be picklable with the standard library
``pickle`` and must never contain live engine objects (actors, ports,
receivers, directors, workflows) — reference them by *name* instead, so
a dump taken in one process restores cleanly into a rebuilt engine in
another process.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class Checkpointable(Protocol):
    """Structural protocol for components that can snapshot their state."""

    def state_dump(self) -> Any:
        """Return a picklable, engine-object-free snapshot of mutable state.

        Must not mutate the component (pure observation): copy containers,
        read RNG state via ``getstate()``, read counters non-destructively.
        """
        ...

    def state_restore(self, state: Any) -> None:
        """Apply a dump produced by :meth:`state_dump` in place.

        The component must already have been *structurally* rebuilt (same
        workflow builder, same specs); restore only re-applies the data.
        Must be idempotent.
        """
        ...


def dump_component(obj: Any, label: str | None = None) -> Any:
    """Dump *obj* via the protocol, raising a clear error when unsupported.

    Small convenience used by the snapshot orchestrator so error messages
    name the offending component (*label*, falling back to the type name)
    instead of failing deep inside pickle.
    """
    from ..core.exceptions import CheckpointError

    dump = getattr(obj, "state_dump", None)
    if dump is None:
        raise CheckpointError(
            f"{label or type(obj).__name__} does not implement the "
            "Checkpointable protocol (no state_dump)"
        )
    return dump()


def restore_component(obj: Any, state: Any, label: str | None = None) -> None:
    """Restore *obj* from *state* via the protocol, with a clear error."""
    from ..core.exceptions import CheckpointError

    restore = getattr(obj, "state_restore", None)
    if restore is None:
        raise CheckpointError(
            f"{label or type(obj).__name__} does not implement the "
            "Checkpointable protocol (no state_restore)"
        )
    restore(state)
