"""The database facade: parse-cached statement execution.

The Linear Road workflow executes the same parameterized statements tens of
thousands of times per run, so :meth:`Database.execute` caches parsed ASTs
by statement text; parameters are supplied separately (``$name``/\
``:name`` markers).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from . import ast
from .errors import QueryError, SchemaError
from .expressions import Evaluator, Scope, is_truthy
from .parser import parse
from .planner import Result, SelectExecutor
from .table import Column, Table


class Database:
    """An in-memory relational database with a SQL-subset front end."""

    def __init__(self, name: str = "main"):
        self.name = name
        self.tables: dict[str, Table] = {}
        self._ast_cache: dict[str, ast.Statement] = {}
        self.statements_executed = 0

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        table = self.tables.get(name)
        if table is None:
            raise SchemaError(f"no such table {name!r}")
        return table

    def create_table(
        self,
        name: str,
        columns: Iterable[Column],
        primary_key: tuple[str, ...] = (),
        if_not_exists: bool = False,
    ) -> Table:
        if name in self.tables:
            if if_not_exists:
                return self.tables[name]
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, columns, primary_key)
        self.tables[name] = table
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        if name not in self.tables:
            if if_exists:
                return
            raise SchemaError(f"no such table {name!r}")
        del self.tables[name]

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        """Snapshot every table's rows (Checkpointable protocol).

        Schemas are structural (recreated by whatever initialization code
        issued the ``CREATE TABLE`` statements); the dump carries data
        only, so it restores in place on a freshly rebuilt database and
        all live references to that database object remain valid.
        """
        return {
            "tables": {
                name: table.state_dump()
                for name, table in self.tables.items()
            },
            "statements_executed": self.statements_executed,
        }

    def state_restore(self, state: dict) -> None:
        """Re-apply dumped rows onto the rebuilt (same-schema) database."""
        from ..core.exceptions import CheckpointError

        for name, table_state in state["tables"].items():
            table = self.tables.get(name)
            if table is None:
                raise CheckpointError(
                    f"cannot restore table {name!r}: the rebuilt database "
                    "has no such table (schema mismatch — was the engine "
                    "rebuilt with the same builder?)"
                )
            table.state_restore(table_state)
        self.statements_executed = int(state["statements_executed"])

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, sql: str, params: Optional[dict[str, Any]] = None
    ) -> Result:
        """Parse (with caching) and run one statement."""
        statement = self._ast_cache.get(sql)
        if statement is None:
            statement = parse(sql)
            self._ast_cache[sql] = statement
        return self.execute_statement(statement, params or {})

    def explain(
        self, sql: str, params: Optional[dict[str, Any]] = None
    ) -> list[str]:
        """The access-path plan a SELECT would use (EXPLAIN-lite)."""
        from .planner import explain_select

        statement = self._ast_cache.get(sql)
        if statement is None:
            statement = parse(sql)
            self._ast_cache[sql] = statement
        if not isinstance(statement, ast.Select):
            raise QueryError("explain() supports SELECT statements only")
        return explain_select(self, statement, params)

    def execute_statement(
        self, statement: ast.Statement, params: dict[str, Any]
    ) -> Result:
        self.statements_executed += 1
        if isinstance(statement, ast.Select):
            return self._execute_select(statement, params, None)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement, params)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement, params)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement, params)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.DropTable):
            self.drop_table(statement.name, statement.if_exists)
            return Result()
        if isinstance(statement, ast.CreateIndex):
            self.table(statement.table).create_index(
                statement.name, statement.columns
            )
            return Result()
        raise QueryError(f"unsupported statement {type(statement).__name__}")

    # ------------------------------------------------------------------
    def _execute_select(
        self,
        select: ast.Select,
        params: dict[str, Any],
        outer_scope: Optional[Scope],
        limit_hint: Optional[int] = None,
    ) -> Result:
        executor = SelectExecutor(
            self, select, params, outer_scope, limit_hint
        )
        return executor.run()

    def _execute_insert(
        self, statement: ast.Insert, params: dict[str, Any]
    ) -> Result:
        table = self.table(statement.table)
        evaluator = Evaluator(self, params)
        columns = statement.columns or tuple(table.column_names)
        if len(columns) != len(set(columns)):
            raise QueryError("duplicate column in INSERT list")
        count = 0
        for row_exprs in statement.rows:
            if len(row_exprs) != len(columns):
                raise QueryError(
                    f"INSERT expects {len(columns)} values, got "
                    f"{len(row_exprs)}"
                )
            values = {
                column: evaluator.eval(expr, Scope({}))
                for column, expr in zip(columns, row_exprs)
            }
            table.insert(values, or_replace=statement.or_replace)
            count += 1
        return Result(rowcount=count)

    def _execute_update(
        self, statement: ast.Update, params: dict[str, Any]
    ) -> Result:
        table = self.table(statement.table)
        evaluator = Evaluator(self, params)
        touched: list[tuple[int, dict[str, Any]]] = []
        for rowid, row in table.scan():
            scope = Scope({statement.table: row})
            if statement.where is None or is_truthy(
                evaluator.eval(statement.where, scope)
            ):
                changes = {
                    assign.column: evaluator.eval(assign.value, scope)
                    for assign in statement.assignments
                }
                touched.append((rowid, changes))
        for rowid, changes in touched:
            table.update_row(rowid, changes)
        return Result(rowcount=len(touched))

    def _execute_delete(
        self, statement: ast.Delete, params: dict[str, Any]
    ) -> Result:
        table = self.table(statement.table)
        evaluator = Evaluator(self, params)
        doomed = [
            rowid
            for rowid, row in table.scan()
            if statement.where is None
            or is_truthy(
                evaluator.eval(statement.where, Scope({statement.table: row}))
            )
        ]
        return Result(rowcount=table.delete_rowids(doomed))

    def _execute_create_table(self, statement: ast.CreateTable) -> Result:
        columns = [
            Column(col.name, col.type_name, col.not_null)
            for col in statement.columns
        ]
        self.create_table(
            statement.name,
            columns,
            statement.primary_key,
            statement.if_not_exists,
        )
        return Result()
