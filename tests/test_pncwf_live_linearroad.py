"""The live (wall-clock, thread-per-actor) PNCWF engine on Linear Road.

A small scaled-time run of the real benchmark workflow through the
original CONFLuEnCE execution model: OS threads, blocking windowed
receivers, source replay against the wall clock.  This is the slowest test
in the suite (~2-3 wall seconds) and the strongest proof that the live
engine and the virtual-time engines implement the same semantics.
"""

import time

import pytest

from repro.directors import PNCWFDirector
from repro.linearroad import (
    build_linear_road,
    LinearRoadValidator,
    LinearRoadWorkload,
    WorkloadConfig,
)
from repro.linearroad.generator import AccidentScript

CONFIG = WorkloadConfig(
    duration_s=240,
    peak_rate=12,
    seed=9,
    accidents=(AccidentScript(at_s=40, clear_s=200, segment=50),),
)


@pytest.fixture(scope="module")
def live_run():
    workload = LinearRoadWorkload(CONFIG)
    system = build_linear_road(workload.arrivals())
    director = PNCWFDirector(time_scale=100.0, poll_timeout_s=0.01)
    director.attach(system.workflow)
    director.initialize_all()
    director.start()
    # 240 event-seconds at 100x => ~2.4 wall seconds, plus drain slack.
    director.run_for(event_time_s=CONFIG.duration_s + 40)
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if system.source.exhausted():
            break
        time.sleep(0.05)
    time.sleep(0.3)  # let the pipeline drain
    director.stop()
    return workload, system


class TestLivePNCWF:
    def test_tolls_flow_through_threads(self, live_run):
        _, system = live_run
        assert len(system.toll_out.notifications) > 50

    def test_accident_detected_live(self, live_run):
        _, system = live_run
        assert system.recorder.inserted >= 1

    def test_outputs_validate(self, live_run):
        workload, system = live_run
        validator = LinearRoadValidator(workload.reports())
        outcome = validator.validate(
            system.toll_out.notifications,
            system.accident_out.alerts,
            system.recorder.inserted,
        )
        assert outcome.ok, outcome.problems[:3]

    def test_response_times_recorded_in_event_time(self, live_run):
        _, system = live_run
        samples = system.toll_out.response_times_us
        assert samples
        # Event-time responses: non-negative, and sane for a lightly
        # loaded live engine (< 30 event-seconds even with thread jitter).
        assert all(response >= 0 for _, response in samples)
        assert min(response for _, response in samples) < 30_000_000
