"""The Linear Road workload generator.

The paper used the MIT/Brandeis traffic simulator's pre-generated traces
("0.5 expressways", Figure 5).  Offline, we generate an equivalent
deterministic synthetic trace with the same schema and the same load
envelope:

* cars enter the (single, L=0.5) expressway at a constant rate, so the
  aggregate report rate — each car reports every 30 s — ramps linearly
  from 0 to ``peak_rate`` reports/s over the scenario (Figure 5 ramps to
  ≈200 reports/s at 600 s);
* every car drives at a per-car cruising speed with small per-report
  jitter, crossing segments as its absolute position advances;
* scripted *accidents*: at scheduled times, two cars halt at the same spot
  in a travel lane for several minutes (producing the ≥4 identical reports
  the detector needs), then clear and resume.

Everything derives from one seed, so "three runs" in the harness are three
seeds and every figure is bit-reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..core.timekeeper import US_PER_S
from .types import (
    Lane,
    PositionReport,
    REPORT_INTERVAL_S,
    SEGMENT_LENGTH_FT,
    SEGMENTS_PER_XWAY,
    segment_of,
)

MPH_TO_FTPS = 5280.0 / 3600.0


@dataclass(frozen=True)
class AccidentScript:
    """A scripted incident: two cars stop at one spot for a while."""

    at_s: int  # when the cars halt
    clear_s: int  # when they resume
    segment: int
    lane: int = Lane.TRAVEL_2


@dataclass
class WorkloadConfig:
    """Knobs of the synthetic Linear Road workload."""

    l_rating: float = 0.5
    duration_s: int = 600
    #: Aggregate report rate reached at the end of the ramp (reports/s).
    peak_rate: float = 200.0
    #: Fraction of the duration spent ramping up (1.0 = ramp to the end).
    ramp_fraction: float = 1.0
    seed: int = 1
    direction: int = 0
    xway: int = 0
    accidents: tuple[AccidentScript, ...] = (
        AccidentScript(at_s=120, clear_s=300, segment=40),
        AccidentScript(at_s=260, clear_s=420, segment=70),
        AccidentScript(at_s=400, clear_s=560, segment=25),
    )
    #: Segments where slow commuter traffic concentrates (congestion —
    #: the precondition of non-zero tolls: > 50 cars and LAV < 40 mph).
    congestion_segments: tuple[int, ...] = ()
    #: Fraction of cars routed into the congested segments.
    congestion_share: float = 0.0
    #: Bursty-arrival mode: > 1 compresses each ``burst_period_s`` window
    #: of *arrival* times into its first ``1/burst_factor`` — the same
    #: reports (bit-identical trace), delivered in periodic bursts whose
    #: instantaneous rate is ``burst_factor``× the mean.  1.0 (default)
    #: leaves arrival times untouched, byte for byte.
    burst_factor: float = 1.0
    #: Length of one burst cycle in seconds (bursty mode only).
    burst_period_s: int = 10
    #: Out-of-order mode: > 0 delays each report's *delivery* by a seeded
    #: uniform jitter in ``[0, disorder_s]`` while keeping the report's
    #: event timestamp — the same reports (bit-identical trace), arriving
    #: shuffled within the disorder bound.  0.0 (default) leaves the
    #: arrival schedule untouched, byte for byte.
    disorder_s: float = 0.0

    def __post_init__(self) -> None:
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1.0")
        if self.burst_period_s < 1:
            raise ValueError("burst_period_s must be >= 1")
        if self.disorder_s < 0.0:
            raise ValueError("disorder_s must be >= 0.0")

    def scaled(self, rate_factor: float) -> "WorkloadConfig":
        """A copy with the load envelope scaled (sensitivity sweeps)."""
        return WorkloadConfig(
            self.l_rating,
            self.duration_s,
            self.peak_rate * rate_factor,
            self.ramp_fraction,
            self.seed,
            self.direction,
            self.xway,
            self.accidents,
            self.congestion_segments,
            self.congestion_share,
            self.burst_factor,
            self.burst_period_s,
            self.disorder_s,
        )


@dataclass
class _Car:
    car_id: int
    entry_s: float
    speed_mph: float
    position_ft: float
    direction: int = 0
    xway: int = 0
    stopped_until: Optional[int] = None


class LinearRoadWorkload:
    """Generates the full, time-sorted position-report trace."""

    def __init__(self, config: Optional[WorkloadConfig] = None):
        self.config = config or WorkloadConfig()
        self._reports: Optional[list[PositionReport]] = None

    # ------------------------------------------------------------------
    def reports(self) -> list[PositionReport]:
        """The complete trace, generated once and cached."""
        if self._reports is None:
            self._reports = self._generate()
        return self._reports

    def arrivals(self) -> list[tuple]:
        """(arrival_us, report) pairs for a :class:`SourceActor`.

        With ``burst_factor > 1`` the arrival times (never the report
        payloads) are warped: each ``burst_period_s`` window is
        compressed into its head, so the mean rate is unchanged while
        the instantaneous rate spikes to ``burst_factor``× — a seeded,
        reproducible overload scenario.  The warp is monotone, so the
        trace stays time-sorted.

        With ``disorder_s > 0`` each report instead becomes a triple
        ``(delivery_us, report, event_ts_us)``: the event timestamp is
        the (possibly burst-warped) arrival time, and delivery is
        delayed by a seeded uniform jitter in ``[0, disorder_s]``,
        capped at the scenario horizon.  The list is sorted by delivery
        time, so consecutive entries carry out-of-order event
        timestamps — bounded by the disorder — for an
        ``out_of_order`` :class:`~repro.core.actors.SourceActor`.
        """
        pairs = [
            (report.time * US_PER_S + index % 1000, report)
            for index, report in enumerate(self.reports())
        ]
        factor = self.config.burst_factor
        if factor != 1.0:
            period_us = self.config.burst_period_s * US_PER_S
            warped = []
            for arrival_us, report in pairs:
                start = (arrival_us // period_us) * period_us
                warped.append(
                    (start + int((arrival_us - start) / factor), report)
                )
            pairs = warped
        disorder_us = int(self.config.disorder_s * US_PER_S)
        if disorder_us == 0:
            return pairs
        # Delivery jitter draws from a dedicated stream so the report
        # trace itself stays bit-identical to the in-order run.
        rng = random.Random(f"{self.config.seed}:disorder")
        horizon_us = self.config.duration_s * US_PER_S - 1
        entries = []
        for index, (event_us, report) in enumerate(pairs):
            delivery = min(event_us + rng.randint(0, disorder_us), horizon_us)
            entries.append((delivery, index, event_us, report))
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        return [
            (delivery, report, event_us)
            for delivery, _, event_us, report in entries
        ]

    def rate_series(self, bucket_s: int = 10) -> list[tuple[int, float]]:
        """(bucket_start_s, reports_per_second) — regenerates Figure 5."""
        counts: dict[int, int] = {}
        for report in self.reports():
            counts[report.time // bucket_s] = (
                counts.get(report.time // bucket_s, 0) + 1
            )
        return [
            (bucket * bucket_s, counts.get(bucket, 0) / bucket_s)
            for bucket in range(self.config.duration_s // bucket_s)
        ]

    # ------------------------------------------------------------------
    def _generate(self) -> list[PositionReport]:
        config = self.config
        rng = random.Random(config.seed)
        # Steady car inflow: each car contributes 1/30 reports/s, so to
        # ramp to peak_rate at the end of the ramp we admit
        # peak_rate*30 cars spread uniformly over the ramp.
        ramp_s = max(config.duration_s * config.ramp_fraction, 1.0)
        total_cars = int(config.peak_rate * REPORT_INTERVAL_S)
        cars: list[_Car] = []
        for car_id in range(total_cars):
            entry = (car_id + rng.random()) * ramp_s / total_cars
            congested = (
                config.congestion_segments
                and rng.random() < config.congestion_share
            )
            if congested:
                speed = rng.uniform(18.0, 32.0)  # crawling: LAV < 40
                start_seg = rng.choice(config.congestion_segments)
            else:
                speed = rng.uniform(45.0, 65.0)
                start_seg = rng.randrange(SEGMENTS_PER_XWAY)
            start_pos = start_seg * SEGMENT_LENGTH_FT + rng.randrange(
                SEGMENT_LENGTH_FT
            )
            car = _Car(car_id, entry, speed, float(start_pos))
            car.direction = self._assign_direction(car_id, rng)
            car.xway = self._assign_xway(car_id, rng)
            cars.append(car)

        crash_pairs = self._assign_accident_cars(cars)
        reports: list[PositionReport] = []
        for car in cars:
            reports.extend(self._drive(car, crash_pairs.get(car.car_id), rng))
        reports.sort(key=lambda r: (r.time, r.car_id))
        return reports

    def _assign_direction(self, car_id: int, rng: random.Random) -> int:
        """L-rating semantics: L=0.5 is one direction; L>=1 uses both."""
        if self.config.l_rating < 1.0:
            return self.config.direction
        return rng.randrange(2)

    def _assign_xway(self, car_id: int, rng: random.Random) -> int:
        """L expressways: cars spread over ceil(L) expressways for L>1."""
        expressways = max(1, int(self.config.l_rating))
        if expressways == 1:
            return self.config.xway
        return rng.randrange(expressways)

    def _assign_accident_cars(
        self, cars: list[_Car]
    ) -> dict[int, AccidentScript]:
        """Pick two already-entered cars per scripted accident.

        A script is viable only when at least four 30-second reports fit
        between its start and the scenario horizon (the stopped-car
        detector needs four identical reports).
        """
        assignment: dict[int, AccidentScript] = {}
        horizon = self.config.duration_s
        for script in self.config.accidents:
            crash_end = min(script.clear_s, horizon)
            if crash_end - script.at_s < REPORT_INTERVAL_S * 4 + 1:
                continue
            picked = 0
            for car in cars:
                if car.car_id in assignment:
                    continue
                if car.entry_s + REPORT_INTERVAL_S < script.at_s:
                    assignment[car.car_id] = script
                    # Both halves of the collision must share a roadway.
                    car.direction = self.config.direction
                    car.xway = self.config.xway
                    picked += 1
                    if picked == 2:
                        break
        return assignment

    def _drive(
        self,
        car: _Car,
        script: Optional[AccidentScript],
        rng: random.Random,
    ) -> Iterator[PositionReport]:
        """Yield one car's reports from entry to the horizon."""
        config = self.config
        time_s = car.entry_s
        position = car.position_ft
        lane = rng.choice(
            (Lane.TRAVEL_1, Lane.TRAVEL_2, Lane.TRAVEL_3)
        )
        crash_position = None
        if script is not None:
            crash_position = (
                script.segment * SEGMENT_LENGTH_FT + SEGMENT_LENGTH_FT // 2
            )
        report_time = int(time_s) + 1
        while report_time < config.duration_s:
            elapsed = report_time - time_s
            time_s = report_time
            in_crash = (
                script is not None
                and script.at_s <= report_time < script.clear_s
            )
            if in_crash:
                # The car sits at the scripted spot with speed 0.
                position = float(crash_position)
                speed = 0.0
                report_lane = script.lane
            else:
                speed = max(
                    5.0, car.speed_mph + rng.uniform(-3.0, 3.0)
                )
                position += speed * MPH_TO_FTPS * elapsed
                report_lane = lane
            wrapped = int(position) % (
                SEGMENTS_PER_XWAY * SEGMENT_LENGTH_FT
            )
            yield PositionReport(
                time=report_time,
                car_id=car.car_id,
                speed=round(speed, 1),
                xway=car.xway,
                lane=int(report_lane),
                direction=car.direction,
                segment=segment_of(wrapped),
                position=wrapped,
            )
            report_time += REPORT_INTERVAL_S
