"""Deprecated load-shedding alias (the mechanics moved to ``repro.overload``).

:class:`LoadShedder` was the original static overload knob: a
backlog-bounded drop policy assigned by hand onto a scheduler's
``shedder`` slot.  Its mechanics now live in
:class:`repro.overload.shedding.BacklogShedder`, and the recommended
interface is the unified :class:`repro.overload.qos.QoSPolicy` applied
through ``SCWFDirector.apply_qos`` — which adds admission control,
backpressure and SLO-driven adaptation on top of plain shedding.

This module keeps the historical constructor working, field for field,
as a thin subclass that emits a one-shot :class:`DeprecationWarning`.
Existing code (``scheduler.shedder = LoadShedder(max_total_backlog=...)``)
behaves exactly as before.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..overload.shedding import BacklogShedder

#: One-shot guard so a run with many shedders warns exactly once.
_WARNED = False


@dataclass
class LoadShedder(BacklogShedder):
    """Backlog-bounded shedding policy (deprecated alias).

    Identical to :class:`repro.overload.shedding.BacklogShedder` — same
    fields, same drop sequence, same counters.  Prefer
    ``QoSPolicy.from_legacy(...)`` with ``director.apply_qos`` for new
    code; this alias exists so historical call sites keep working.
    """

    def __post_init__(self) -> None:
        global _WARNED
        if not _WARNED:
            _WARNED = True
            warnings.warn(
                "LoadShedder is deprecated; use repro.QoSPolicy (e.g. "
                "QoSPolicy.from_legacy(...)) with director.apply_qos()",
                DeprecationWarning,
                stacklevel=3,
            )
        super().__post_init__()
