"""Wire codecs for push streams.

CONFLuEnCE's push sources receive newline-delimited records over TCP/HTTP;
these codecs translate between payload objects and wire lines.  The JSON
codec handles arbitrary dict payloads; the CSV codec handles flat tuples
with a declared schema (the Linear Road feed format).
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from typing import Any, Callable, Optional, Sequence

from ..core.exceptions import ConfluenceError


class CodecError(ConfluenceError):
    """A wire line could not be decoded."""


class JSONLinesCodec:
    """One JSON document per line; payloads are dicts (or dataclasses)."""

    def encode(self, payload: Any) -> str:
        if is_dataclass(payload) and not isinstance(payload, type):
            payload = asdict(payload)
        return json.dumps(payload, separators=(",", ":"))

    def decode(self, line: str) -> Any:
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise CodecError(f"bad JSON line: {line[:80]!r}") from exc


class CSVCodec:
    """Comma-separated records with a fixed (name, converter) schema."""

    def __init__(self, fields: Sequence[tuple[str, Callable[[str], Any]]]):
        self.fields = list(fields)

    def encode(self, payload: Any) -> str:
        if is_dataclass(payload) and not isinstance(payload, type):
            payload = asdict(payload)
        try:
            return ",".join(str(payload[name]) for name, _ in self.fields)
        except KeyError as exc:
            raise CodecError(f"payload missing field {exc}") from exc

    def decode(self, line: str) -> dict[str, Any]:
        parts = line.split(",")
        if len(parts) != len(self.fields):
            raise CodecError(
                f"expected {len(self.fields)} fields, got {len(parts)}: "
                f"{line[:80]!r}"
            )
        record = {}
        for (name, convert), raw in zip(self.fields, parts):
            try:
                record[name] = convert(raw)
            except (TypeError, ValueError) as exc:
                raise CodecError(
                    f"field {name!r}: cannot convert {raw!r}"
                ) from exc
        return record


def position_report_codec() -> CSVCodec:
    """The Linear Road position-report wire schema."""
    return CSVCodec(
        [
            ("time", int),
            ("car_id", int),
            ("speed", float),
            ("xway", int),
            ("lane", int),
            ("direction", int),
            ("segment", int),
            ("position", int),
        ]
    )
