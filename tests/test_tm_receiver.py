"""The TM Windowed Receiver: windows flow to the scheduler (Figure 4)."""

import pytest

from repro.core.actors import MapActor, SinkActor, SourceActor
from repro.core.events import CWEvent
from repro.core.exceptions import ReceiverError
from repro.core.waves import WaveTag
from repro.core.windows import WindowSpec
from repro.core.workflow import Workflow
from repro.simulation.clock import VirtualClock
from repro.simulation.cost_model import CostModel
from repro.stafilos.schedulers import RoundRobinScheduler
from repro.stafilos.scwf_director import SCWFDirector


def build(window=None):
    workflow = Workflow("tm")
    source = SourceActor("src", arrivals=[])
    source.add_output("out")
    actor = MapActor("actor", lambda v: v, window=window)
    sink = SinkActor("sink")
    workflow.add_all([source, actor, sink])
    workflow.connect(source, actor)
    workflow.connect(actor, sink)
    scheduler = RoundRobinScheduler(10_000)
    director = SCWFDirector(scheduler, VirtualClock(), CostModel())
    director.attach(workflow)
    director.initialize_all()
    return director, scheduler, actor


def event(value, ts=0):
    event.counter = getattr(event, "counter", 0) + 1
    return CWEvent(value, ts, WaveTag.root(event.counter))


class TestEventFlow:
    def test_window_production_enqueues_at_scheduler(self):
        director, scheduler, actor = build(WindowSpec.tokens(2, 2))
        receiver = actor.input("in").receiver
        receiver.put(event("a"))
        assert scheduler.ready_count(actor) == 0  # window not yet formed
        receiver.put(event("b"))
        assert scheduler.ready_count(actor) == 1

    def test_passthrough_port_schedules_single_events(self):
        director, scheduler, actor = build(window=None)
        receiver = actor.input("in").receiver
        receiver.put(event("a"))
        assert scheduler.ready_count(actor) == 1
        ready = scheduler.dequeue_item(actor)
        assert isinstance(ready.item, CWEvent)

    def test_stage_then_get(self):
        director, scheduler, actor = build(WindowSpec.tokens(1, 1))
        receiver = actor.input("in").receiver
        receiver.put(event("a"))
        ready = scheduler.dequeue_item(actor)
        receiver.stage(ready.item)
        assert receiver.has_token()
        assert receiver.get() is ready.item
        assert not receiver.has_token()

    def test_get_without_staging_raises(self):
        director, scheduler, actor = build(WindowSpec.tokens(1, 1))
        receiver = actor.input("in").receiver
        with pytest.raises(ReceiverError):
            receiver.get()

    def test_admission_counts_and_statistics(self):
        director, scheduler, actor = build(window=None)
        receiver = actor.input("in").receiver
        receiver.put(event("a"))
        assert director.total_events_admitted == 1
        stats = director.statistics.get(actor)
        assert stats.inputs_total == 1
