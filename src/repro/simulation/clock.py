"""Clocks for the execution runtimes.

The benchmark harness runs everything in **virtual time**: actor invocations
advance a :class:`VirtualClock` by their modelled cost, and idle engines
jump straight to the next arrival or window timeout.  This is the key
substitution documented in DESIGN.md — the Python reproduction cannot match
the JVM's wall-clock throughput, but every scheduling decision (quanta,
slices, periods, priorities) is made on microsecond arithmetic that is
identical in virtual and real time.

:class:`WallClock` implements the same interface against the host clock so
the SCWF director can also be run live.
"""

from __future__ import annotations

import time

from ..core.exceptions import SimulationError


class VirtualClock:
    """A monotone microsecond counter advanced explicitly by the runtime."""

    def __init__(self, start_us: int = 0):
        self._now = int(start_us)

    @property
    def now_us(self) -> int:
        return self._now

    def advance(self, delta_us: int) -> int:
        """Consume *delta_us* microseconds of engine time."""
        if delta_us < 0:
            raise SimulationError(f"cannot advance time by {delta_us}us")
        self._now += int(delta_us)
        return self._now

    def jump_to(self, timestamp_us: int) -> int:
        """Fast-forward an idle engine; never moves backwards."""
        if timestamp_us > self._now:
            self._now = int(timestamp_us)
        return self._now

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        """Snapshot the current virtual time (Checkpointable protocol)."""
        return {"now_us": self._now}

    def state_restore(self, state: dict) -> None:
        """Re-apply a dumped virtual time (Checkpointable protocol)."""
        self._now = int(state["now_us"])

    def __repr__(self) -> str:
        return f"VirtualClock({self._now}us)"


class WallClock:
    """The same interface bound to the host's monotonic clock."""

    def __init__(self, time_scale: float = 1.0):
        self._epoch = time.monotonic()
        self.time_scale = time_scale

    @property
    def now_us(self) -> int:
        elapsed = time.monotonic() - self._epoch
        return int(elapsed * self.time_scale * 1_000_000)

    def advance(self, delta_us: int) -> int:
        """Wall time advances by itself; firing costs are real."""
        return self.now_us

    def jump_to(self, timestamp_us: int) -> int:
        """Cannot fast-forward reality: sleep until the timestamp."""
        remaining_us = timestamp_us - self.now_us
        if remaining_us > 0:
            time.sleep(remaining_us / self.time_scale / 1_000_000)
        return self.now_us
