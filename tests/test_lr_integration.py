"""Linear Road end-to-end: full workflow under every execution model."""

import pytest

from repro.linearroad import (
    build_linear_road,
    LinearRoadValidator,
    LinearRoadWorkload,
    ResponseTimeSeries,
    WorkloadConfig,
)
from repro.linearroad.generator import AccidentScript
from repro.simulation import (
    CostModel,
    SimulationRuntime,
    ThreadedCWFDirector,
    VirtualClock,
)
from repro.stafilos import (
    FIFOScheduler,
    QuantumPriorityScheduler,
    RateBasedScheduler,
    RoundRobinScheduler,
    SCWFDirector,
)

CONFIG = WorkloadConfig(
    duration_s=360,
    peak_rate=60,
    seed=2,
    accidents=(AccidentScript(at_s=90, clear_s=260, segment=40),),
)


@pytest.fixture(scope="module")
def workload():
    return LinearRoadWorkload(CONFIG)


def run_with(workload, director_factory):
    system = build_linear_road(workload.arrivals())
    clock = VirtualClock()
    director = director_factory(clock)
    director.attach(system.workflow)
    SimulationRuntime(director, clock).run(CONFIG.duration_s, drain=True)
    return system


SCHEDULER_FACTORIES = {
    "QBS": lambda clock: SCWFDirector(
        QuantumPriorityScheduler(500), clock, CostModel()
    ),
    "RR": lambda clock: SCWFDirector(
        RoundRobinScheduler(20_000), clock, CostModel()
    ),
    "RB": lambda clock: SCWFDirector(
        RateBasedScheduler(), clock, CostModel()
    ),
    "FIFO": lambda clock: SCWFDirector(
        FIFOScheduler(), clock, CostModel()
    ),
    "PNCWF": lambda clock: ThreadedCWFDirector(clock, CostModel()),
}


@pytest.fixture(scope="module")
def results(workload):
    return {
        name: run_with(workload, factory)
        for name, factory in SCHEDULER_FACTORIES.items()
    }


class TestSemanticsUnderEveryScheduler:
    @pytest.mark.parametrize("name", list(SCHEDULER_FACTORIES))
    def test_outputs_validate(self, results, workload, name):
        system = results[name]
        validator = LinearRoadValidator(workload.reports())
        report = validator.validate(
            system.toll_out.notifications,
            system.accident_out.alerts,
            system.recorder.inserted,
        )
        assert report.ok, report.problems[:3]

    @pytest.mark.parametrize("name", list(SCHEDULER_FACTORIES))
    def test_tolls_produced(self, results, name):
        assert len(results[name].toll_out.notifications) > 100

    @pytest.mark.parametrize("name", list(SCHEDULER_FACTORIES))
    def test_accident_detected_and_alerts_sent(self, results, name):
        system = results[name]
        assert system.recorder.inserted >= 1
        assert len(system.accident_out.alerts) > 0

    def test_all_schedulers_agree_on_toll_count(self, results):
        counts = {
            name: len(system.toll_out.notifications)
            for name, system in results.items()
        }
        # All execution models drain the same workload fully.
        assert len(set(counts.values())) == 1, counts

    def test_nonzero_tolls_in_congested_segments(self, results):
        tolls = results["QBS"].toll_out.notifications
        charged = [t for t in tolls if t.toll > 0]
        for toll in charged:
            assert toll.num_cars > 50
            assert toll.lav < 40

    @pytest.mark.parametrize("name", list(SCHEDULER_FACTORIES))
    def test_alert_latency_under_deadline(self, results, name):
        # LR requires alerts within 5s of the position report; in the
        # uncongested regime every model should meet it easily.
        system = results[name]
        for emitted_us, response_us in (
            system.accident_out.response_times_us
        ):
            assert response_us <= 5_000_000


class TestHierarchicalVariant:
    def test_composite_subworkflows_match_flat(self, workload):
        flat = run_with(
            workload,
            lambda clock: SCWFDirector(
                QuantumPriorityScheduler(500), clock, CostModel()
            ),
        )
        hierarchical_system = build_linear_road(
            workload.arrivals(), hierarchical=True
        )
        clock = VirtualClock()
        director = SCWFDirector(
            QuantumPriorityScheduler(500), clock, CostModel()
        )
        director.attach(hierarchical_system.workflow)
        SimulationRuntime(director, clock).run(
            CONFIG.duration_s, drain=True
        )
        assert len(hierarchical_system.toll_out.notifications) == len(
            flat.toll_out.notifications
        )
        assert hierarchical_system.recorder.inserted >= 1


class TestResponseTimeSeriesIntegration:
    def test_series_has_low_latency_at_low_load(self, results):
        system = results["QBS"]
        series = ResponseTimeSeries.from_samples(
            system.toll_response_times_us, 10, CONFIG.duration_s
        )
        assert series.mean_response_s() < 1.0
        assert series.thrash_time_s() is None
