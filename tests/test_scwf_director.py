"""The SCWF director: the iteration cycle of Figure 3."""

import pytest

from repro.core.actors import Actor, MapActor, SinkActor, SourceActor
from repro.core.windows import WindowSpec
from repro.core.workflow import Workflow
from repro.simulation.clock import VirtualClock
from repro.simulation.cost_model import CostModel
from repro.simulation.runtime import SimulationRuntime
from repro.stafilos.schedulers import (
    FIFOScheduler,
    QuantumPriorityScheduler,
    RateBasedScheduler,
    RoundRobinScheduler,
)
from repro.stafilos.scwf_director import SCWFDirector
from repro.stafilos.tm_receiver import TMWindowedReceiver

ALL_SCHEDULERS = [
    lambda: QuantumPriorityScheduler(500),
    lambda: RoundRobinScheduler(10_000),
    lambda: RateBasedScheduler(),
    lambda: FIFOScheduler(),
]


class TestDirectorCycle:
    @pytest.mark.parametrize("make_scheduler", ALL_SCHEDULERS)
    def test_pipeline_under_every_policy(self, pipeline_builder, make_scheduler):
        system = pipeline_builder(
            [(i * 1000, i) for i in range(10)], make_scheduler()
        )
        system["runtime"].run(1.0, drain=True)
        assert system["sink"].values == [i * 2 for i in range(10)]

    def test_receivers_are_tm_windowed(self, pipeline_builder):
        system = pipeline_builder([], QuantumPriorityScheduler(500))
        receiver = system["transform"].input("in").receiver
        assert isinstance(receiver, TMWindowedReceiver)

    def test_statistics_recorded(self, pipeline_builder):
        system = pipeline_builder(
            [(0, 1), (0, 2)], RoundRobinScheduler(10_000)
        )
        system["runtime"].run(1.0, drain=True)
        stats = system["director"].statistics.get(system["transform"])
        assert stats.invocations == 2
        assert stats.avg_cost_us > 0

    def test_clock_advances_with_costs(self, pipeline_builder):
        system = pipeline_builder(
            [(0, 1)], RoundRobinScheduler(10_000),
            cost_model=CostModel(default_cost_us=500),
        )
        system["runtime"].run(1.0, drain=True)
        assert system["clock"].now_us > 500

    def test_wave_lineage_preserved_to_sink(self, pipeline_builder):
        system = pipeline_builder([(0, 5)], QuantumPriorityScheduler(500))
        system["runtime"].run(1.0, drain=True)
        _, item = system["sink"].items[0]
        assert item.wave.depth == 1  # child of the source's root wave

    def test_response_time_uses_arrival_timestamp(self, pipeline_builder):
        system = pipeline_builder([(100, 1)], RoundRobinScheduler(10_000))
        system["runtime"].run(1.0, drain=True)
        emitted_at, response = system["sink"].response_times_us[0]
        assert response == emitted_at - 100


class TestWindowTimeouts:
    def build_timed(self):
        workflow = Workflow("timed")
        source = SourceActor("src", arrivals=[(0, 1), (100_000, 2)])
        source.add_output("out")
        agg = MapActor(
            "sum",
            lambda values: sum(values),
            window=WindowSpec.time(
                1_000_000, timeout=500_000
            ),
        )
        sink = SinkActor("sink")
        workflow.add_all([source, agg, sink])
        workflow.connect(source, agg)
        workflow.connect(agg, sink)
        clock = VirtualClock()
        director = SCWFDirector(
            RoundRobinScheduler(10_000), clock, CostModel()
        )
        director.attach(workflow)
        return workflow, director, clock, sink

    def test_quiet_stream_window_forced_by_timeout(self):
        workflow, director, clock, sink = self.build_timed()
        runtime = SimulationRuntime(director, clock)
        runtime.run(5.0, drain=True)
        # No event ever crossed the 1s boundary; the timeout produced it.
        assert sink.values == [3]

    def test_deadline_visible_before_timeout(self):
        workflow, director, clock, sink = self.build_timed()
        director.initialize_all()
        director.run_iteration()
        deadline = director.next_window_deadline()
        assert deadline == 1_000_000 + 500_000


class TestCompositeEntry:
    def test_run_to_quiescence_via_composite_protocol(self, pipeline_builder):
        system = pipeline_builder([(0, 1)], FIFOScheduler())
        director = system["director"]
        director.initialize_all()
        fired = director.run_to_quiescence(0)
        assert fired > 0
        assert system["sink"].values == [2]
