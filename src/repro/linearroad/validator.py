"""Semantic validation of a Linear Road run.

Checks the workflow's outputs against an independent reference computation
over the same trace — this is how the test suite proves the engine computes
Linear Road, not just that it moves tokens:

* every emitted toll corresponds to a real segment crossing of that car;
* tolls obey the specification formula given the statistics the workflow
  itself maintained (cross-checked against trace-derived statistics);
* every scripted accident is detected and recorded;
* accident alerts only go to cars genuinely approaching a fresh accident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .types import (
    AccidentAlert,
    Lane,
    PositionReport,
    TollNotification,
    TOLL_CAR_THRESHOLD,
    TOLL_LAV_THRESHOLD_MPH,
)


@dataclass
class ValidationReport:
    checked_tolls: int = 0
    checked_alerts: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def complain(self, message: str) -> None:
        self.problems.append(message)

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.problems)} problem(s)"
        return (
            f"validation: {status} "
            f"(tolls checked: {self.checked_tolls}, "
            f"alerts checked: {self.checked_alerts})"
        )


class LinearRoadValidator:
    """Replays the trace independently and audits the workflow outputs."""

    def __init__(self, reports: list[PositionReport]):
        self.reports = reports
        self._by_car: dict[int, list[PositionReport]] = {}
        for report in reports:
            self._by_car.setdefault(report.car_id, []).append(report)
        for history in self._by_car.values():
            history.sort(key=lambda r: r.time)
        self._crossings = self._find_crossings()
        self._stopped_spots = self._find_stopped_spots()

    # ------------------------------------------------------------------
    # Reference computations
    # ------------------------------------------------------------------
    def _find_crossings(self) -> set[tuple[int, int]]:
        """(car_id, report_time) pairs at which a crossing toll is legal."""
        crossings: set[tuple[int, int]] = set()
        for car_id, history in self._by_car.items():
            for previous, current in zip(history, history[1:]):
                if (
                    previous.segment != current.segment
                    and current.lane != Lane.EXIT
                ):
                    crossings.add((car_id, current.time))
        return crossings

    def _find_stopped_spots(self) -> dict[tuple, list[tuple[int, int]]]:
        """spot -> [(car_id, first_stopped_report_time)] from the trace."""
        stopped: dict[tuple, list[tuple[int, int]]] = {}
        for car_id, history in self._by_car.items():
            run_start = 0
            for index in range(1, len(history) + 1):
                same = (
                    index < len(history)
                    and history[index].spot == history[run_start].spot
                )
                if not same:
                    if index - run_start >= 4:
                        spot = history[run_start].spot
                        stopped.setdefault(spot, []).append(
                            (car_id, history[run_start].time)
                        )
                    run_start = index
        return stopped

    def expected_accident_spots(self) -> set[tuple]:
        """Spots where >= 2 distinct cars stopped (outside exit lanes)."""
        return {
            spot
            for spot, cars in self._stopped_spots.items()
            if len({car for car, _ in cars}) >= 2 and spot[2] != Lane.EXIT
        }

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------
    def validate(
        self,
        tolls: list[TollNotification],
        alerts: list[AccidentAlert],
        recorded_accidents: int,
    ) -> ValidationReport:
        report = ValidationReport()
        self._audit_tolls(tolls, report)
        self._audit_alerts(alerts, report)
        expected = self.expected_accident_spots()
        if expected and recorded_accidents == 0:
            report.complain(
                f"{len(expected)} accident spot(s) in the trace but none "
                "recorded"
            )
        return report

    def _audit_tolls(
        self, tolls: list[TollNotification], report: ValidationReport
    ) -> None:
        for toll in tolls:
            report.checked_tolls += 1
            if (toll.car_id, toll.time) not in self._crossings:
                report.complain(
                    f"toll for car {toll.car_id} at t={toll.time} without "
                    "a segment crossing"
                )
                continue
            if toll.lav is None or toll.num_cars is None:
                # No statistics row yet: the toll must be zero.
                if toll.toll != 0:
                    report.complain(
                        f"non-zero toll {toll.toll} for car {toll.car_id} "
                        "with no segment statistics"
                    )
                continue
            congested = (
                toll.lav < TOLL_LAV_THRESHOLD_MPH
                and toll.num_cars > TOLL_CAR_THRESHOLD
            )
            formula = 2 * (toll.num_cars - TOLL_CAR_THRESHOLD) ** 2
            if toll.toll not in (0, formula) or (
                not congested and toll.toll != 0
            ):
                report.complain(
                    f"toll {toll.toll} for car {toll.car_id} at "
                    f"t={toll.time} inconsistent with LAV={toll.lav}, "
                    f"cars={toll.num_cars}"
                )

    def _audit_alerts(
        self, alerts: list[AccidentAlert], report: ValidationReport
    ) -> None:
        accident_segments = {
            spot[3] // 5280 % 100
            for spot in self.expected_accident_spots()
        }
        for alert in alerts:
            report.checked_alerts += 1
            if alert.accident_segment not in accident_segments:
                report.complain(
                    f"alert for car {alert.car_id} about segment "
                    f"{alert.accident_segment} where no accident happened"
                )
