"""Deterministic engine-time token buckets for source admission.

The throttling / rate-limiting pattern, adapted to the virtual-time
engine: tokens refill as a pure function of the engine clock, so a seeded
run admits the same events at the same engine times on every execution —
there is no wall-clock anywhere in the loop.  One bucket guards one
source; the :class:`~repro.overload.controller.OverloadController` owns
a bucket per registered source and consults it both when the scheduler
asks whether a source is runnable and when the director pumps it.
"""

from __future__ import annotations

from ..core.exceptions import SchedulerError

US_PER_S = 1_000_000


class TokenBucket:
    """A token bucket refilled in engine time (microsecond timestamps).

    ``rate_per_s`` tokens accrue per engine second up to ``capacity``;
    admitting an event consumes one token.  All arithmetic depends only
    on the engine timestamps handed in, keeping seeded runs reproducible.
    """

    __slots__ = ("rate_per_s", "capacity", "tokens", "stamp_us")

    def __init__(self, rate_per_s: float, capacity: float, now_us: int = 0):
        if rate_per_s <= 0:
            raise SchedulerError("token bucket rate must be positive")
        if capacity < 1:
            raise SchedulerError("token bucket capacity must be >= 1")
        self.rate_per_s = float(rate_per_s)
        self.capacity = float(capacity)
        #: Buckets start full: the first burst up to ``capacity`` passes.
        self.tokens = float(capacity)
        self.stamp_us = int(now_us)

    def refill(self, now_us: int) -> None:
        """Accrue tokens for the engine time elapsed since the last call."""
        if now_us <= self.stamp_us:
            return
        self.tokens = min(
            self.capacity,
            self.tokens + (now_us - self.stamp_us) * self.rate_per_s / US_PER_S,
        )
        self.stamp_us = now_us

    def available(self, now_us: int) -> int:
        """Whole tokens available at *now_us* (refills first)."""
        self.refill(now_us)
        return int(self.tokens)

    def consume(self, count: int) -> None:
        """Spend *count* tokens (the caller checked :meth:`available`)."""
        self.tokens -= count

    def next_token_time(self, at_us: int) -> int:
        """Earliest engine time >= *at_us* with at least one whole token.

        Lets the idle fast-forward path jump the clock straight to the
        next admission instant instead of crawling toward it.
        """
        self.refill(at_us)
        if self.tokens >= 1.0:
            return at_us
        deficit = 1.0 - self.tokens
        wait_us = int(deficit * US_PER_S / self.rate_per_s) + 1
        return self.stamp_us + wait_us

    def state_dump(self) -> dict:
        """Checkpointable protocol: the mutable refill state."""
        return {"tokens": self.tokens, "stamp_us": self.stamp_us}

    def state_restore(self, state: dict) -> None:
        """Re-apply a :meth:`state_dump` payload."""
        self.tokens = float(state["tokens"])
        self.stamp_us = int(state["stamp_us"])

    def __repr__(self) -> str:
        return (
            f"TokenBucket(rate={self.rate_per_s:g}/s, "
            f"cap={self.capacity:g}, tokens={self.tokens:.3f})"
        )
