"""The Linear Road benchmark as a continuous workflow.

Linear Road (Arasu et al., VLDB'04) simulates variable tolling on the
expressways of a fictional metropolis; the paper evaluates STAFiLOS on a
continuous-workflow implementation of its stream-processing core (accident
detection/notification, per-minute segment statistics, toll calculation and
notification — historical queries excluded, as in the paper).
"""

from .db import create_linear_road_database, TOLL_QUERY
from .generator import AccidentScript, LinearRoadWorkload, WorkloadConfig
from .metrics import ResponseTimeSeries
from .types import (
    Accident,
    AccidentAlert,
    Lane,
    PositionReport,
    SegmentCrossing,
    SegmentStat,
    StoppedCar,
    TollNotification,
)
from .validator import LinearRoadValidator, ValidationReport
from .workflow import build_linear_road, LinearRoadSystem

__all__ = [
    "Accident",
    "AccidentAlert",
    "AccidentScript",
    "build_linear_road",
    "create_linear_road_database",
    "Lane",
    "LinearRoadSystem",
    "LinearRoadValidator",
    "LinearRoadWorkload",
    "PositionReport",
    "ResponseTimeSeries",
    "SegmentCrossing",
    "SegmentStat",
    "StoppedCar",
    "TOLL_QUERY",
    "TollNotification",
    "ValidationReport",
    "WorkloadConfig",
]
