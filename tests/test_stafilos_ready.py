"""Per-actor ready queues: timestamp-ordered staging."""

from repro.core.events import CWEvent
from repro.core.waves import WaveTag
from repro.core.windows import Window
from repro.stafilos.ready import ReadyItem, ReadyQueue


def event(value, ts):
    event.counter += 1
    return CWEvent(value, ts, WaveTag.root(event.counter))


event.counter = 0


class TestReadyQueue:
    def test_pop_in_timestamp_order(self):
        queue = ReadyQueue()
        queue.push("in", event("late", 30))
        queue.push("in", event("early", 10))
        assert queue.pop().item.value == "early"
        assert queue.pop().item.value == "late"

    def test_fifo_within_equal_timestamps(self):
        queue = ReadyQueue()
        queue.push("in", event("first", 10))
        queue.push("in", event("second", 10))
        assert queue.pop().item.value == "first"

    def test_pop_empty_returns_none(self):
        assert ReadyQueue().pop() is None

    def test_peek_does_not_remove(self):
        queue = ReadyQueue()
        queue.push("in", event("x", 1))
        assert queue.peek().item.value == "x"
        assert len(queue) == 1

    def test_windows_ordered_by_newest_event(self):
        queue = ReadyQueue()
        window_late = Window([event("a", 50)])
        window_early = Window([event("b", 5)])
        queue.push("in", window_late)
        queue.push("in", window_early)
        assert queue.pop().item is window_early

    def test_items_remember_port(self):
        queue = ReadyQueue()
        queue.push("lav", event("x", 1))
        item = queue.pop()
        assert item.port_name == "lav"

    def test_bool_and_clear(self):
        queue = ReadyQueue()
        assert not queue
        queue.push("in", event("x", 1))
        assert queue
        queue.clear()
        assert not queue
