"""The live thread-based PNCWF director (wall clock, scaled)."""

import time

import pytest

from repro.core.actors import FunctionActor, SinkActor, SourceActor
from repro.core.exceptions import DirectorError
from repro.core.windows import WindowSpec
from repro.core.workflow import Workflow
from repro.directors.pncwf import BlockingWindowedReceiver, PNCWFDirector


class TestBlockingWindowedReceiver:
    def make_event(self, value, ts=0):
        from repro.core.events import CWEvent
        from repro.core.waves import WaveTag

        self_counter = getattr(self, "_counter", 0) + 1
        self._counter = self_counter
        return CWEvent(value, ts, WaveTag.root(self_counter))

    def test_blocking_get_returns_formed_window(self):
        receiver = BlockingWindowedReceiver(WindowSpec.tokens(2, 2))
        receiver.put(self.make_event("a"))
        receiver.put(self.make_event("b"))
        window = receiver.get_blocking(timeout_s=0.1)
        assert window.values == ["a", "b"]

    def test_declared_timeout_forces_partial_window(self):
        # Only specs with a window_formation_timeout force on expiry.
        receiver = BlockingWindowedReceiver(
            WindowSpec.tokens(4, 1, timeout=1_000_000)
        )
        receiver.put(self.make_event("a"))
        window = receiver.get_blocking(timeout_s=0.02)
        assert window is not None
        assert window.values == ["a"]
        assert window.forced

    def test_undeclared_timeout_never_forces(self):
        receiver = BlockingWindowedReceiver(WindowSpec.tokens(4, 1))
        receiver.put(self.make_event("a"))
        assert receiver.get_blocking(timeout_s=0.02) is None
        assert receiver.pending_events() == 1

    def test_timed_window_forced_only_past_event_horizon(self):
        receiver = BlockingWindowedReceiver(
            WindowSpec.time(1_000_000, timeout=500_000)
        )
        receiver.put(self.make_event("a", ts=0))
        # Event time has not reached boundary+timeout: no force.
        assert receiver.get_blocking(timeout_s=0.01, now_us=1_200_000) is None
        window = receiver.get_blocking(timeout_s=0.01, now_us=1_600_000)
        assert window is not None and window.values == ["a"]

    def test_timeout_with_nothing_returns_none(self):
        receiver = BlockingWindowedReceiver(
            WindowSpec.tokens(4, 1, timeout=1_000_000)
        )
        assert receiver.get_blocking(timeout_s=0.02) is None

    def test_passthrough_mode_for_plain_ports(self):
        receiver = BlockingWindowedReceiver(None)
        receiver.put(self.make_event("x"))
        window = receiver.get_blocking(timeout_s=0.1)
        assert len(window) == 1

    def test_close_wakes_blocked_reader(self):
        receiver = BlockingWindowedReceiver(WindowSpec.tokens(2, 2))
        receiver.close()
        assert receiver.get_blocking(timeout_s=1.0) is None


class TestPNCWFDirector:
    def test_live_windowed_pipeline(self):
        wf = Workflow("live")
        # 100 ms of event time between arrivals, replayed 50x fast.
        source = SourceActor(
            "src", arrivals=[(i * 100_000, i) for i in range(8)]
        )
        source.add_output("out")
        summer = FunctionActor(
            "sum",
            lambda ctx: ctx.send("out", sum(ctx.read("in").values)),
            inputs=(("in", WindowSpec.tokens(2, 2)),),
        )
        sink = SinkActor("sink")
        wf.add_all([source, summer, sink])
        wf.connect(source, summer)
        wf.connect(summer, sink)
        director = PNCWFDirector(time_scale=50.0, poll_timeout_s=0.01)
        director.attach(wf)
        director.initialize_all()
        director.start()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and len(sink.items) < 4:
            time.sleep(0.01)
        director.stop()
        values = [v[0] if isinstance(v, list) else v for v in sink.values]
        assert sorted(sink.values)[:4] == [1, 5, 9, 13]

    def test_run_to_quiescence_unsupported(self):
        wf = Workflow("w")
        source = SourceActor("s", arrivals=[])
        source.add_output("out")
        sink = SinkActor("k")
        wf.add_all([source, sink])
        wf.connect(source, sink)
        director = PNCWFDirector()
        director.attach(wf)
        with pytest.raises(DirectorError):
            director.run_to_quiescence(0)

    def test_current_time_scales(self):
        director = PNCWFDirector(time_scale=1000.0)
        assert director.current_time() == 0  # not started
        director._epoch = time.monotonic() - 0.01
        assert director.current_time() >= 9_000
