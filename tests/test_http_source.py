"""The HTTP push source (paper §2.2's second transport)."""

import json
import time
import urllib.request

import pytest

from repro.core import MapActor, SinkActor, Workflow
from repro.simulation import CostModel, SimulationRuntime, VirtualClock
from repro.stafilos import RoundRobinScheduler, SCWFDirector
from repro.streams import HTTPStreamSource, JSONLinesCodec


def post(host, port, body: str) -> dict:
    request = urllib.request.Request(
        f"http://{host}:{port}/",
        data=body.encode("utf-8"),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        return json.loads(response.read())


class TestHTTPStreamSource:
    def test_post_then_workflow_consumes(self):
        clock = VirtualClock()
        source = HTTPStreamSource("http", clock=clock)
        host, port = source.listen()
        try:
            reply = post(
                host, port, "\n".join(
                    json.dumps({"v": i}) for i in range(10)
                )
            )
            assert reply == {"accepted": 10}

            workflow = Workflow("http-wf")
            double = MapActor("double", lambda v: v["v"] * 2)
            sink = SinkActor("sink")
            workflow.add_all([source, double, sink])
            workflow.connect(source, double)
            workflow.connect(double, sink)
            director = SCWFDirector(
                RoundRobinScheduler(10_000), clock, CostModel()
            )
            director.attach(workflow)
            SimulationRuntime(director, clock).run(1.0, drain=True)
            assert sorted(sink.values) == [i * 2 for i in range(10)]
        finally:
            source.close()

    def test_bad_lines_counted(self):
        source = HTTPStreamSource("http2")
        host, port = source.listen()
        try:
            reply = post(host, port, '{"ok":1}\n{broken\n{"ok":2}')
            assert reply == {"accepted": 2}
            assert source.decode_errors == 1
        finally:
            source.close()

    def test_stats_endpoint(self):
        source = HTTPStreamSource("http3")
        host, port = source.listen()
        try:
            post(host, port, '{"a":1}')
            with urllib.request.urlopen(
                f"http://{host}:{port}/stats", timeout=5
            ) as response:
                stats = json.loads(response.read())
            assert stats["received"] == 1
            assert stats["requests"] == 1
            assert stats["backlog"] == 1
        finally:
            source.close()

    def test_unknown_path_404(self):
        source = HTTPStreamSource("http4")
        host, port = source.listen()
        try:
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{host}:{port}/nope", timeout=5
                )
        finally:
            source.close()


class TestWorkflowDot:
    def test_dot_export(self):
        from repro.core import SourceActor, WindowSpec

        workflow = Workflow("dotted")
        source = SourceActor("src", arrivals=[])
        source.add_output("out")
        windowed = MapActor(
            "win", lambda v: v, window=WindowSpec.tokens(4, 1)
        )
        windowed.priority = 5
        sink = SinkActor("sink")
        stale = SinkActor("stale")
        workflow.add_all([source, windowed, sink, stale])
        workflow.connect(source, windowed)
        workflow.connect(windowed, sink)
        workflow.connect_expired(windowed, stale)
        dot = workflow.to_dot()
        assert dot.startswith('digraph "dotted"')
        assert '"src" [shape=invhouse' in dot
        assert '"sink" [shape=house' in dot
        assert "{4,1,tokens}" in dot
        assert 'style=dashed, label="expired"' in dot
        assert "p=5" in dot
