"""The command-line interface."""

import pytest

from repro.harness.cli import _tune, build_parser, main
from repro.harness.configs import ExperimentConfig, SchedulerSpec
from repro.harness.experiment import checkpoint_meta, config_from_meta


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "table3", "fig5", "fig6", "fig7",
                        "fig8", "run"):
            args = parser.parse_args(
                [command] + (["rr"] if command == "run" else [])
            )
            assert callable(args.fn)

    def test_checkpoint_flags_and_verbs_registered(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "rr", "--checkpoint-dir", "/tmp/ck",
             "--checkpoint-every", "10", "--checkpoint-retain", "5"]
        )
        assert args.checkpoint_dir == "/tmp/ck"
        assert args.checkpoint_every == 10.0
        assert args.checkpoint_retain == 5
        resume = parser.parse_args(["resume", "/tmp/ck"])
        assert callable(resume.fn)
        deadletter = parser.parse_args(
            ["deadletter", "/tmp/ck", "--replay"]
        )
        assert callable(deadletter.fn) and deadletter.replay

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--duration", "120", "--seeds", "2", "fig5"]
        )
        assert args.duration == 120
        assert args.seeds == 2

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_size_option(self):
        parser = build_parser()
        assert parser.parse_args(["fig5"]).train_size == 1  # default
        assert (
            parser.parse_args(["--train-size", "64", "fig5"]).train_size
            == 64
        )
        for drain_all in ("none", "all", "max", "NONE"):
            args = parser.parse_args(["--train-size", drain_all, "fig5"])
            assert args.train_size is None
        for bad in ("0", "-3", "many"):
            with pytest.raises(SystemExit):
                parser.parse_args(["--train-size", bad, "fig5"])

    def test_train_size_round_trips_through_config(self):
        """--train-size -> ExperimentConfig -> checkpoint meta -> config."""
        parser = build_parser()
        base = ExperimentConfig(SchedulerSpec("RR", quantum_us=10_000))
        for text, expected in (("64", 64), ("none", None), ("1", 1)):
            args = parser.parse_args(
                ["--train-size", text, "--duration", "60", "run", "rr"]
            )
            config = _tune(base, args)
            assert config.train_size == expected
            rebuilt, seed = config_from_meta(checkpoint_meta(config, 7))
            assert seed == 7 and rebuilt.train_size == expected
        # Manifests written before event trains default to per-event.
        legacy = checkpoint_meta(base, 7)
        legacy.pop("train_size")
        rebuilt, _ = config_from_meta(legacy)
        assert rebuilt.train_size == 1


class TestExecution:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "PNCWF" in out and "Director" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "Basic Quantum (QBS)" in capsys.readouterr().out

    def test_fig5_short(self, capsys):
        assert main(["--duration", "90", "fig5"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_run_single_scheduler_short(self, capsys):
        assert main(
            ["--duration", "60", "run", "rr", "--quantum", "20000"]
        ) == 0
        out = capsys.readouterr().out
        assert "RR-q20000" in out
        assert "summary:" in out

    def test_run_checkpoint_then_resume(self, tmp_path, capsys):
        assert main(
            ["--duration", "60", "--seeds", "1", "run", "rr",
             "--quantum", "10000", "--checkpoint-dir", str(tmp_path),
             "--checkpoint-every", "20"]
        ) == 0
        capsys.readouterr()
        assert main(["resume", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint" in out

    def test_checkpoint_dir_requires_single_seed(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["--duration", "60", "--seeds", "2", "run", "rr",
                 "--checkpoint-dir", str(tmp_path)]
            )

    def test_deadletter_inspect(self, tmp_path, capsys):
        assert main(
            ["--duration", "60", "--seeds", "1", "run", "rr",
             "--quantum", "10000", "--checkpoint-dir", str(tmp_path),
             "--checkpoint-every", "20"]
        ) == 0
        capsys.readouterr()
        assert main(["deadletter", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "dead letter" in out

    def test_dot_prints_linear_road_graph(self, capsys):
        assert main(["dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "linear-road"')
        assert "TollNotification" in out
