"""Incremental (compensating) sliding-window aggregates.

The paper's §4.3: "providing a set of stream optimized atomic as well as
composite actors, which can accumulate and compensate tokens which are
added and expired from a sliding window, would help in avoiding redundant
multiple aggregate computations and would greatly improve the performance
of window-based actors."

:class:`SlidingAggregate` is that data structure: O(1) add/expire for
sum/count/mean, amortized-O(1) min/max via monotonic deques.
:class:`IncrementalAggActor` wraps it as an actor: it consumes *events*
(not windows), maintains one aggregate per group, and emits the updated
aggregate each arrival once the window is full — producing exactly the
same values as a windowed recompute actor at a fraction of the cost.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from ..core.actors import Actor
from ..core.context import FiringContext
from ..core.exceptions import ConfluenceError

SUPPORTED = ("sum", "count", "mean", "min", "max")


class SlidingAggregate:
    """A count-based sliding window with compensated aggregates."""

    def __init__(self, size: int):
        if size <= 0:
            raise ConfluenceError("sliding window size must be positive")
        self.size = size
        self._values: deque = deque()
        self._sum = 0.0
        #: Monotonic deques of (value, index) for min/max.
        self._min: deque = deque()
        self._max: deque = deque()
        self._admitted = 0

    # ------------------------------------------------------------------
    def add(self, value: float) -> Optional[float]:
        """Admit *value*; returns the expired value, if the window slid."""
        index = self._admitted
        self._admitted += 1
        self._values.append(value)
        self._sum += value
        while self._min and self._min[-1][0] >= value:
            self._min.pop()
        self._min.append((value, index))
        while self._max and self._max[-1][0] <= value:
            self._max.pop()
        self._max.append((value, index))
        expired = None
        if len(self._values) > self.size:
            expired = self._values.popleft()
            self._sum -= expired
            oldest_index = index - self.size
            if self._min and self._min[0][1] == oldest_index:
                self._min.popleft()
            if self._max and self._max[0][1] == oldest_index:
                self._max.popleft()
        return expired

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def full(self) -> bool:
        return len(self._values) == self.size

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if not self._values:
            raise ConfluenceError("mean of an empty window")
        return self._sum / len(self._values)

    @property
    def min(self) -> float:
        if not self._min:
            raise ConfluenceError("min of an empty window")
        return self._min[0][0]

    @property
    def max(self) -> float:
        if not self._max:
            raise ConfluenceError("max of an empty window")
        return self._max[0][0]

    def value_of(self, aggregate: str) -> float:
        if aggregate == "sum":
            return self.sum
        if aggregate == "count":
            return float(self.count)
        if aggregate == "mean":
            return self.mean
        if aggregate == "min":
            return self.min
        if aggregate == "max":
            return self.max
        raise ConfluenceError(
            f"unsupported aggregate {aggregate!r} "
            f"(supported: {SUPPORTED})"
        )


class IncrementalAggActor(Actor):
    """Per-event compensated aggregation over a sliding count window.

    Emits ``(group_key, aggregate_value)`` (or the bare value when no
    group-by) each time a group's window is full — the same output stream
    a ``WindowSpec.tokens(size, 1)`` + recompute actor yields, without
    rebuilding the window.
    """

    def __init__(
        self,
        name: str,
        size: int,
        aggregate: str = "mean",
        value_fn: Callable[[Any], float] = float,
        group_by: Optional[Callable[[Any], Any]] = None,
    ):
        super().__init__(name)
        if aggregate not in SUPPORTED:
            raise ConfluenceError(
                f"unsupported aggregate {aggregate!r} "
                f"(supported: {SUPPORTED})"
            )
        self.add_input("in")
        self.add_output("out")
        self.size = size
        self.aggregate = aggregate
        self.value_fn = value_fn
        self.group_by = group_by
        self._windows: dict[Any, SlidingAggregate] = {}

    def fire(self, ctx: FiringContext) -> None:
        event = ctx.read("in")
        if event is None:
            return
        payload = event.value
        key = self.group_by(payload) if self.group_by else None
        window = self._windows.get(key)
        if window is None:
            window = SlidingAggregate(self.size)
            self._windows[key] = window
        window.add(self.value_fn(payload))
        if window.full:
            value = window.value_of(self.aggregate)
            ctx.send("out", value if key is None else (key, value))
