"""Discrete Event (DE) director.

DE maintains a single global event queue ordered by timestamp; the actor
whose input port holds the globally earliest event is fired next ("Director:
Event Queue / Event-driven / Event Order" in the paper's Table 1).  Model
time advances to the timestamp of each processed event, which gives DE the
global notion of time the taxonomy lists.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

from ..core.director import Director
from ..core.events import CWEvent
from ..core.exceptions import DirectorError
from ..core.ports import InputPort
from ..core.receivers import Receiver


class _DEReceiver(Receiver):
    """Receiver that forwards arrivals to the director's global calendar."""

    def __init__(self, director: "DEDirector", port: InputPort):
        super().__init__(port)
        self._director = director
        self._staged: list[CWEvent] = []

    def put(self, event: CWEvent) -> None:
        self._director._post(event, self)

    def stage(self, event: CWEvent) -> None:
        self._staged.append(event)

    def get(self) -> CWEvent:
        if not self._staged:
            raise DirectorError("DE receiver read outside a firing")
        return self._staged.pop(0)

    def has_token(self) -> bool:
        return bool(self._staged)


class DEDirector(Director):
    """Globally timestamp-ordered event execution."""

    model_name = "DE"

    def __init__(self):
        super().__init__()
        self._calendar: list[tuple[int, int, CWEvent, _DEReceiver]] = []
        self._tiebreak = itertools.count()
        self._now = 0

    def create_receiver(self, port: InputPort) -> Receiver:
        if port.window is not None:
            raise DirectorError(
                "the DE director has no window semantics; use a continuous "
                f"director for port {port.full_name}"
            )
        return _DEReceiver(self, port)

    def current_time(self) -> int:
        return self._now

    def _post(self, event: CWEvent, receiver: _DEReceiver) -> None:
        if event.timestamp < self._now:
            raise DirectorError(
                f"DE causality violation: event stamped {event.timestamp} "
                f"posted at model time {self._now}"
            )
        heapq.heappush(
            self._calendar,
            (event.timestamp, next(self._tiebreak), event, receiver),
        )

    # ------------------------------------------------------------------
    def run_to_quiescence(self, now: int) -> int:
        return self.run_until(None)

    def run_until(self, horizon: Optional[int]) -> int:
        """Process calendar events with timestamp <= *horizon* (or all)."""
        firings = 0
        while self._calendar:
            timestamp, _, event, receiver = self._calendar[0]
            if horizon is not None and timestamp > horizon:
                break
            heapq.heappop(self._calendar)
            self._now = max(self._now, timestamp)
            actor = receiver.port.actor
            ctx = self.make_context(actor, self._now)
            receiver.stage(event)
            ctx.stage(receiver.port.name, event)
            receiver._staged.clear()
            self.statistics.record_input(actor, 1, self._now)
            if actor.prefire(ctx):
                actor.fire(ctx)
                actor.postfire(ctx)
                ctx.close()
                self.statistics.record_invocation(actor, 0)
                firings += 1
        return firings

    @property
    def pending(self) -> int:
        return len(self._calendar)
