"""Exception hierarchy for the CONFLuEnCE reproduction.

All library errors derive from :class:`ConfluenceError` so applications can
catch engine failures with a single ``except`` clause while still
distinguishing model errors (bad workflow graphs), runtime errors (director
misuse) and window-semantics errors.
"""

from __future__ import annotations


class ConfluenceError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class WorkflowError(ConfluenceError):
    """The workflow graph is malformed (dangling ports, duplicate names...)."""


class ActorError(ConfluenceError):
    """An actor was used outside of its legal lifecycle."""


class PortError(ConfluenceError):
    """A port was connected or accessed illegally."""


class ReceiverError(ConfluenceError):
    """A receiver was read while empty or otherwise misused."""


class WindowError(ConfluenceError):
    """A window specification is invalid or window formation failed."""


class DirectorError(ConfluenceError):
    """A director was driven through an illegal state transition."""


class SchedulerError(ConfluenceError):
    """A STAFiLOS scheduler violated the abstract-scheduler contract."""


class SimulationError(ConfluenceError):
    """The virtual-time simulation runtime was misconfigured."""


class ResilienceError(ConfluenceError):
    """A fault policy or fault-injection spec is invalid."""


class ActorQuarantinedError(ConfluenceError):
    """An item was routed to the dead-letter queue because its actor is
    quarantined (the per-actor error budget was exhausted)."""


class CheckpointError(ConfluenceError):
    """A checkpoint could not be captured, stored, or restored.

    Raised by the :mod:`repro.checkpoint` subsystem when a snapshot is
    requested from a component that does not support the
    ``Checkpointable`` protocol, when a stored snapshot fails its
    integrity check, or when a restore is applied to an engine whose
    structure does not match the manifest.
    """


class InjectedFault(ConfluenceError):
    """A deterministic fault raised by the fault-injection harness.

    Raised by :class:`repro.resilience.FaultInjector` inside a wrapped
    actor's ``fire`` so chaos runs exercise the exact same recovery paths
    (retry, quarantine, dead-letter) as real actor failures.
    """
