"""Shard transport plane: lockstep-pickle vs. pipelined-codec shipping.

The data-plane numbers of the pipelined transport work
(``repro.shard.codec`` + the credit-window coordinator loop): time to
encode, ship and ack a fixed stream of Linear Road chunks through a
``multiprocessing`` pipe to an echo worker, under the two transport
configurations the coordinator supports:

``lockstep-pickle``
    The historical plane: raw per-group dict payloads (default pickling
    by the pipe) with a credit window of 1 — every chunk waits for its
    ack before the next send, serialising encode, pipe I/O and worker
    decode.

``pipelined-codec``
    The new plane: chunks packed by :func:`repro.shard.codec.encode_chunk`
    (columnar ``struct`` frames for the homogeneous report stream) with
    a credit window of 8, so encode and pipe I/O overlap the worker's
    decode of earlier chunks.

The echo worker acks every chunk with its decoded row count, and both
variants assert the full stream arrived intact, so a "speedup" can never
come from dropping work.  Chunk shape is the production rate: 4 shard
groups x 500 rows is ~10 s of the paper's ~200 reports/s workload.

Gated two ways by ``make bench-shard-transport``:

* absolute means vs. ``baselines/shard_transport.json`` so transport
  overhead cannot silently blow up;
* a relative gate (``test_transport_speedup_gate``) asserting the
  pipelined-codec plane ships the stream in <= 0.70x the lockstep
  per-chunk time (the >= 30 % acceptance floor, met even on the 1-core
  CI container where overlap is concurrency, not parallelism); on
  >= 4-CPU machines the floor rises to a true >= 1.5x speedup.
"""

import multiprocessing
import os
import time

import pytest

from repro.linearroad.types import PositionReport
from repro.shard.codec import decode_chunk, encode_chunk

#: 4 groups x 500 rows = 2 000 rows/chunk — ~10 s of the paper's ~200
#: reports/s Linear Road feed, split across four xway shard groups.
GROUPS = 4
ROWS = 500
CHUNKS = 60

#: Credit window of the pipelined variant (the coordinator default is 4;
#: 8 keeps the pipe saturated against a single echo worker).
WINDOW = 8


def make_chunks() -> list:
    """Synthesize the chunk stream once; both variants ship the same."""
    chunks = []
    ts = 0
    for c in range(CHUNKS):
        chunk = {}
        for g in range(GROUPS):
            rows = []
            for i in range(ROWS):
                ts += 37
                rows.append(
                    (
                        ts,
                        PositionReport(
                            time=ts // 1_000_000,
                            car_id=(c * 31 + i) % 5_000,
                            speed=float(30 + (i % 40)),
                            xway=g,
                            lane=i % 5,
                            direction=c % 2,
                            segment=i % 100,
                            position=(i * 521) % 528_000,
                        ),
                    )
                )
            chunk[g] = rows
        chunks.append(chunk)
    return chunks


def _echo_worker(conn) -> None:
    """Worker half: decode each chunk, ack its row count, repeat."""
    while True:
        message = conn.recv()
        if message[0] == "stop":
            break
        _, watermark, payload, _ = message
        if isinstance(payload, (bytes, bytearray, memoryview)):
            shards = decode_chunk(payload)
        else:
            shards = payload
        rows = sum(len(group) for group in shards.values())
        conn.send(("ack", 0, watermark, {"rows": rows}, {}, 0))
    conn.close()


def _ship(mode: str, window: int, chunks: list) -> float:
    """Stream every chunk through an echo worker; return inner seconds.

    The returned time covers only the credit-gated send/ack loop —
    process spawn is excluded so the relative gate compares transport,
    not fork cost.  Asserts the acked row count matches the stream.
    """
    total = GROUPS * ROWS * CHUNKS
    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe()
    worker = ctx.Process(target=_echo_worker, args=(child,), daemon=True)
    worker.start()
    child.close()
    outstanding = 0
    acked = 0
    start = time.perf_counter()
    for watermark, chunk in enumerate(chunks):
        while outstanding >= window:
            ack = parent.recv()
            acked += ack[3]["rows"]
            outstanding -= 1
        if mode == "codec":
            payload = encode_chunk(chunk, "struct")
        else:
            payload = chunk
        parent.send(("chunk", watermark, payload, None))
        outstanding += 1
    while outstanding:
        ack = parent.recv()
        acked += ack[3]["rows"]
        outstanding -= 1
    elapsed = time.perf_counter() - start
    parent.send(("stop",))
    worker.join(timeout=30)
    parent.close()
    assert acked == total, (
        f"{mode} shipped {acked} rows, expected {total}"
    )
    return elapsed


#: The chunk stream, built once per pytest session.
_CHUNKS: list = []


def _stream() -> list:
    if not _CHUNKS:
        _CHUNKS.extend(make_chunks())
    return _CHUNKS


def test_transport_lockstep_pickle(once):
    """Raw-dict payloads, window 1 (gated vs. shard_transport.json)."""
    once(_ship, "raw", 1, _stream())


def test_transport_pipelined_codec(once):
    """Struct-codec payloads, window 8 (gated vs. shard_transport.json)."""
    once(_ship, "codec", WINDOW, _stream())


def test_transport_speedup_gate():
    """Pipelined-codec must beat lockstep-pickle by the acceptance floor.

    >= 30 % lower per-chunk transport time everywhere (ratio <= 0.70);
    on >= 4-CPU machines the bar is the full >= 1.5x speedup.  Trials
    are interleaved (raw, codec, raw, codec, ...) and each side takes
    its best, so slow machine-load stretches hit both variants alike.
    """
    raws, codecs = [], []
    for _ in range(4):
        raws.append(_ship("raw", 1, _stream()))
        codecs.append(_ship("codec", WINDOW, _stream()))
    lockstep = min(raws)
    pipelined = min(codecs)
    ratio = pipelined / lockstep
    floor = 1 / 1.5 if (os.cpu_count() or 1) >= 4 else 0.70
    assert ratio <= floor, (
        f"pipelined-codec per-chunk time is {ratio:.2f}x lockstep "
        f"(floor {floor:.2f}x: lockstep "
        f"{lockstep / CHUNKS * 1e3:.2f} ms/chunk, pipelined "
        f"{pipelined / CHUNKS * 1e3:.2f} ms/chunk)"
    )
