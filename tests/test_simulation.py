"""Virtual clock, cost model and simulation runtime."""

import pytest

from repro.core.actors import MapActor, SinkActor, SourceActor
from repro.core.context import FiringContext
from repro.core.exceptions import SimulationError
from repro.core.waves import WaveGenerator
from repro.core.workflow import Workflow
from repro.simulation.clock import VirtualClock, WallClock
from repro.simulation.cost_model import CostModel
from repro.simulation.runtime import SimulationRuntime
from repro.stafilos.schedulers import RoundRobinScheduler
from repro.stafilos.scwf_director import SCWFDirector


class TestVirtualClock:
    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(10)
        clock.advance(5)
        assert clock.now_us == 15

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock().advance(-1)

    def test_jump_to_never_goes_backwards(self):
        clock = VirtualClock(100)
        clock.jump_to(50)
        assert clock.now_us == 100
        clock.jump_to(200)
        assert clock.now_us == 200


class TestWallClock:
    def test_now_scales(self):
        import time

        clock = WallClock(time_scale=1000.0)
        time.sleep(0.005)
        assert clock.now_us >= 4_000

    def test_advance_is_passive(self):
        clock = WallClock()
        before = clock.now_us
        assert clock.advance(10_000_000) >= before


class TestCostModel:
    def actor_and_ctx(self, inputs=0, outputs=0):
        actor = MapActor("m", lambda v: v)
        ctx = FiringContext(actor, 0, lambda *a: None, WaveGenerator())
        ctx.inputs_consumed = inputs
        ctx.outputs_produced = outputs
        return actor, ctx

    def test_base_plus_io_charges(self):
        model = CostModel(
            default_cost_us=100, per_input_us=10, per_output_us=20
        )
        actor, ctx = self.actor_and_ctx(inputs=2, outputs=3)
        assert model.invocation_cost(actor, ctx) == 100 + 20 + 60

    def test_nominal_cost_overrides_default(self):
        model = CostModel(default_cost_us=100)
        actor, ctx = self.actor_and_ctx()
        actor.nominal_cost_us = 777
        assert model.invocation_cost(actor, ctx) == 777

    def test_scale_multiplies(self):
        model = CostModel(default_cost_us=100, scale=2.0)
        actor, ctx = self.actor_and_ctx()
        assert model.invocation_cost(actor, ctx) == 200

    def test_jitter_reproducible_per_seed(self):
        def costs(seed):
            model = CostModel(default_cost_us=1000, jitter=0.1, seed=seed)
            actor, ctx = self.actor_and_ctx()
            return [model.invocation_cost(actor, ctx) for _ in range(5)]

        assert costs(1) == costs(1)
        assert costs(1) != costs(2)

    def test_source_cost_per_event(self):
        model = CostModel(source_per_event_us=50, default_cost_us=100)
        source = SourceActor("s")
        assert model.source_cost(source, 4) == 100 // 4 + 200

    def test_clone_overrides(self):
        model = CostModel(default_cost_us=100)
        clone = model.clone(default_cost_us=500, scale=3.0)
        assert clone.default_cost_us == 500
        assert clone.scale == 3.0
        assert model.default_cost_us == 100


class TestSimulationRuntime:
    def build(self, arrivals):
        workflow = Workflow("w")
        source = SourceActor("src", arrivals=arrivals)
        source.add_output("out")
        relay = MapActor("relay", lambda v: v)
        sink = SinkActor("sink")
        workflow.add_all([source, relay, sink])
        workflow.connect(source, relay)
        workflow.connect(relay, sink)
        clock = VirtualClock()
        director = SCWFDirector(
            RoundRobinScheduler(10_000), clock, CostModel()
        )
        director.attach(workflow)
        return SimulationRuntime(director, clock), clock, sink

    def test_idle_engine_jumps_to_next_arrival(self):
        runtime, clock, sink = self.build([(5_000_000, "x")])
        runtime.run(10.0)
        assert sink.values == ["x"]
        # The clock jumped rather than spinning through 5 virtual seconds.
        assert runtime.iterations_run < 100

    def test_horizon_respected_without_drain(self):
        runtime, clock, sink = self.build([(1_000_000, "a"), (9_000_000, "b")])
        runtime.run(5.0)
        assert sink.values == ["a"]

    def test_drain_processes_everything(self):
        runtime, clock, sink = self.build([(1_000_000, "a"), (9_000_000, "b")])
        runtime.run(5.0, drain=True)
        assert sink.values == ["a", "b"]

    def test_fully_drained_run_terminates_early(self):
        runtime, clock, sink = self.build([(1000, "a")])
        runtime.run(1000.0)
        assert clock.now_us < 1_000_000_000

    def test_iteration_guard(self):
        runtime, clock, sink = self.build([(0, "x")])
        with pytest.raises(SimulationError):
            runtime.run(10.0, max_iterations=0)
