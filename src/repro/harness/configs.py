"""Experiment configurations — Table 3 of the paper.

=============================  =========================================
Workload                       0.5 highways (L-rating)
Workload rate                  ramps to ~200 input reports/s (Figure 5)
Experiment duration            600 sec
QBS source scheduling interval 5 internal actor iterations
Basic quantum (QBS)            500, 1000, 5000, 10000, 20000 µs
Basic quantum (RR)             5000, 10000, 20000, 40000 µs
Priorities used (QBS)          5 (outputs: tolls + accident alerts),
                               10 (statistics + accident detection)
=============================  =========================================

The paper runs every experiment three times and reports the average; the
harness does the same with three seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..linearroad.generator import WorkloadConfig
from ..overload.qos import QoSPolicy
from ..simulation.cost_model import CostModel

#: Table 3 parameter sets.
QBS_BASIC_QUANTA_US = (500, 1_000, 5_000, 10_000, 20_000)
RR_BASIC_QUANTA_US = (5_000, 10_000, 20_000, 40_000)
QBS_SOURCE_INTERVAL = 5
EXPERIMENT_DURATION_S = 600
DEFAULT_SEEDS = (1, 2, 3)
OUTPUT_ACTOR_PRIORITY = 5
MAINTENANCE_ACTOR_PRIORITY = 10

#: The calibrated cost model of DESIGN.md: STAFiLOS schedulers saturate
#: near 160 reports/s; the simulated thread-based PNCWF near 120 (the
#: paper's measured capacity ratio).  ``scale`` lifts the per-actor costs
#: so the Linear Road pipeline averages ~6.3 ms of work per report;
#: ``sync_per_event_us``/``context_switch_us`` are the threaded overheads.
def default_cost_model(seed: int = 7) -> CostModel:
    """The calibrated cost model used by every evaluation bench."""
    return CostModel(
        scale=2.2,
        jitter=0.05,
        seed=seed,
        sync_per_event_us=150,
        context_switch_us=400,
    )


@dataclass(frozen=True)
class SchedulerSpec:
    """Which policy to run and with what parameter."""

    kind: str  # "QBS" | "RR" | "RB" | "FIFO" | "ADAPT" | "PNCWF"
    quantum_us: Optional[int] = None  # QBS basic quantum / RR slice
    source_interval: int = QBS_SOURCE_INTERVAL

    @property
    def label(self) -> str:
        if self.kind == "QBS":
            return f"QBS-q{self.quantum_us}"
        if self.kind == "RR":
            return f"RR-q{self.quantum_us}"
        if self.kind == "ADAPT" and self.quantum_us is not None:
            return f"ADAPT-q{self.quantum_us}"
        return self.kind


@dataclass(frozen=True)
class ExperimentConfig:
    """One cell of the evaluation matrix."""

    scheduler: SchedulerSpec
    workload: WorkloadConfig = field(
        default_factory=lambda: WorkloadConfig(
            duration_s=EXPERIMENT_DURATION_S
        )
    )
    seeds: tuple[int, ...] = DEFAULT_SEEDS
    bucket_s: int = 10
    cost_seed: int = 7
    #: ``--inject-faults`` spec (see :mod:`repro.resilience.injection`);
    #: ``None`` runs fault-free.
    fault_spec: Optional[str] = None
    #: Recovery policy handed to the director.  ``None`` means: fail-stop
    #: (``FaultPolicy(propagate=True)``) for clean runs,
    #: :meth:`FaultPolicy.resilient` when a ``fault_spec`` is set so chaos
    #: runs survive their own injections.
    error_policy: Optional[object] = None
    #: Directory for wave-aligned snapshots (``--checkpoint-dir``);
    #: ``None`` disables checkpointing entirely.
    checkpoint_dir: Optional[str] = None
    #: Engine-time seconds between automatic snapshots
    #: (``--checkpoint-every``); ``None`` with a directory set means
    #: snapshots happen only through the explicit barrier API.
    checkpoint_every_s: Optional[float] = None
    #: How many snapshots the directory store retains (oldest pruned).
    checkpoint_retain: int = 3
    #: Event-train firing quantum handed to the SCWF director
    #: (``--train-size``): how many ready items a dispatched actor may
    #: drain in one dispatch.  ``1`` is the classic per-event loop,
    #: ``None`` drains until the scheduler switches away.  Results are
    #: bit-identical across values; only wall-clock changes.
    train_size: Optional[int] = 1
    #: Overload-control policy (``--qos``): when set, the harness builds
    #: an :class:`repro.overload.OverloadController` on the director with
    #: the toll-notification sink as the latency probe.  ``None`` runs
    #: uncontrolled (byte-identical to the pre-QoS engine).
    qos: Optional[QoSPolicy] = None
    #: Operator-chain fusion (``--fuse``): when set, the harness runs
    #: :func:`repro.fusion.fuse_workflow` over the built workflow before
    #: attaching the director, compiling linear map segments into single
    #: composed firings.  Sink outputs, wave tags and per-actor counters
    #: are bit-identical to the unfused run; only dispatch overhead (and
    #: therefore the engine-time trajectory) changes.  SCWF only.
    fuse: bool = False
    #: Frontier progress tracking (``--out-of-order``): ``None`` runs
    #: without a tracker (byte-identical to the pre-frontier engine),
    #: ``"track"`` observes wave tokens for counters/traces only, and
    #: ``"close"`` additionally closes timed windows once the merged
    #: source/wave frontier passes them — replacing the engine-time
    #: formation timeout for frontier-managed panes.  SCWF only.
    frontier: Optional[str] = None
    #: Lateness policy spec (``--lateness``): ``"drop"``, ``"expired"``
    #: or ``"grace:<us>"`` — how frontier-managed receivers treat events
    #: older than the applied frontier.  Requires ``frontier="close"``.
    lateness: Optional[str] = None
    #: Shard data-plane credit window (``--shard-inflight``): chunks the
    #: coordinator may keep outstanding per worker before waiting for an
    #: ack.  ``1`` is the historical lockstep barrier; deeper windows
    #: overlap encode + pipe I/O with worker compute.  Merged output is
    #: bit-identical at any depth (frontier-close runs clamp to 1).
    shard_inflight: int = 4
    #: Shard chunk wire codec (``--shard-codec``): ``"struct"`` packs
    #: homogeneous LR report chunks as fixed-width columns with a framed
    #: pickle-5 fallback per group; ``"pickle"`` frames the whole
    #: payload through protocol-5 pickling.  Output-identical.
    shard_codec: str = "struct"
    #: Adaptive chunk sizing (``--shard-adaptive-chunk``): widen/narrow
    #: the chunk interval between bounds from acked backlog telemetry.
    #: Off = the fixed grid.  Output-identical either way.
    shard_adaptive_chunk: bool = False

    def with_seeds(self, seeds: tuple[int, ...]) -> "ExperimentConfig":
        return replace(self, seeds=seeds)

    def scaled_duration(self, duration_s: int) -> "ExperimentConfig":
        workload = replace(
            self.workload,
            duration_s=duration_s,
        )
        return replace(self, workload=workload)

    @property
    def label(self) -> str:
        return self.scheduler.label


def figure6_configs(**overrides) -> list[ExperimentConfig]:
    """RR sensitivity: one config per Table 3 slice value."""
    return [
        ExperimentConfig(SchedulerSpec("RR", quantum_us=q), **overrides)
        for q in RR_BASIC_QUANTA_US
    ]


def figure7_configs(**overrides) -> list[ExperimentConfig]:
    """QBS sensitivity: one config per Table 3 basic quantum."""
    return [
        ExperimentConfig(SchedulerSpec("QBS", quantum_us=b), **overrides)
        for b in QBS_BASIC_QUANTA_US
    ]


def figure8_configs(**overrides) -> list[ExperimentConfig]:
    """The head-to-head: best RR and QBS, RB, and thread-based PNCWF."""
    return [
        ExperimentConfig(SchedulerSpec("RR", quantum_us=40_000), **overrides),
        ExperimentConfig(SchedulerSpec("QBS", quantum_us=500), **overrides),
        ExperimentConfig(SchedulerSpec("RB"), **overrides),
        ExperimentConfig(SchedulerSpec("PNCWF"), **overrides),
    ]
