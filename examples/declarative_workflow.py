"""Declarative workflows: specification separated from execution.

Kepler's key property — specify a workflow once, run it under different
models of computation — carried over: the workflow below is plain data
(``spec``), built by :func:`repro.core.build_workflow`, and then executed
twice, under two different STAFiLOS policies, without touching the spec.
A Graphviz rendering of the graph is printed for good measure.

Run:  python examples/declarative_workflow.py
"""

from repro import (
    build_workflow,
    CostModel,
    EDFScheduler,
    QBSScheduler,
    SCWFDirector,
    SimulationRuntime,
    VirtualClock,
)
from repro.harness import latency_percentiles, render_statistics


def make_spec():
    """A fraud-ish monitor: transactions -> per-card velocity -> alerts."""
    arrivals = []
    for i in range(400):
        card = i % 25
        amount = 10.0 + (i * 7) % 90
        if card == 7 and i > 200:
            amount = 900.0 + i  # a runaway card
        arrivals.append((i * 250_000, {"card": card, "amount": amount}))
    return {
        "name": "txn-monitor",
        "actors": [
            {"name": "transactions", "type": "source",
             "arrivals": arrivals},
            {
                "name": "velocity",
                "type": "map",
                "function": lambda txns: {
                    "card": txns[0]["card"],
                    "total": sum(t["amount"] for t in txns),
                },
                "window": {
                    "size": 4,
                    "step": 1,
                    "group_by": lambda event: event.value["card"],
                },
                "priority": 10,
                "cost_us": 500,
            },
            {
                "name": "flag",
                "type": "map",
                "function": lambda v: (
                    f"card {v['card']}: ${v['total']:.0f} in 4 txns"
                    if v["total"] > 1000
                    else None
                ),
                "priority": 5,
                "cost_us": 300,
            },
            {"name": "alerts", "type": "sink"},
        ],
        "connections": [
            ["transactions", "velocity"],
            ["velocity", "flag"],
            ["flag", "alerts"],
        ],
    }


def run_under(scheduler):
    workflow = build_workflow(make_spec())
    clock = VirtualClock()
    director = SCWFDirector(scheduler, clock, CostModel())
    director.attach(workflow)
    SimulationRuntime(director, clock).run(120, drain=True)
    sink = workflow.actors["alerts"]
    return workflow, director, sink


def main() -> None:
    workflow = build_workflow(make_spec())
    print("the workflow, as Graphviz DOT:")
    print(workflow.to_dot())
    print()
    for scheduler in (
        QBSScheduler(basic_quantum_us=500),
        EDFScheduler(default_target_us=1_000_000),
    ):
        workflow, director, sink = run_under(scheduler)
        pct = latency_percentiles(sink.response_times_us)
        print(
            f"under {scheduler.describe()}: {len(sink.items)} alerts, "
            f"p50={pct[50] * 1000:.1f}ms p99={pct[99] * 1000:.1f}ms"
        )
        assert sink.items, "the runaway card must be flagged"
    print()
    print("actor statistics (last run):")
    print(render_statistics(director.statistics))


if __name__ == "__main__":
    main()
