"""Table 3: the experimental setup.

Prints the configuration matrix the harness actually uses and verifies it
matches the paper's parameters.
"""

from repro.harness import (
    EXPERIMENT_DURATION_S,
    figure6_configs,
    figure7_configs,
    figure8_configs,
    QBS_BASIC_QUANTA_US,
    QBS_SOURCE_INTERVAL,
    RR_BASIC_QUANTA_US,
)
from repro.linearroad import build_linear_road, LinearRoadWorkload
from repro.linearroad.generator import WorkloadConfig


def collect_setup():
    workload = figure8_configs()[0].workload
    system = build_linear_road(
        LinearRoadWorkload(WorkloadConfig(duration_s=1, peak_rate=1)).arrivals()
    )
    priorities = {
        actor.name: actor.priority
        for actor in system.workflow.actors.values()
    }
    return workload, priorities


def test_table3_setup(once):
    workload, priorities = once(collect_setup)
    print()
    print("Table 3: Experimental setup")
    print(f"  Workload L-rating              {workload.l_rating}")
    print(f"  Workload rate                  {workload.peak_rate:.0f} input rate")
    print(f"  Experiment duration            {workload.duration_s} sec")
    print(f"  QBS source scheduling interval {QBS_SOURCE_INTERVAL} internal actor iterations")
    print(f"  Basic Quantum (QBS) (us)       {', '.join(map(str, QBS_BASIC_QUANTA_US))}")
    print(f"  Basic Quantum (RR) (us)        {', '.join(map(str, RR_BASIC_QUANTA_US))}")
    used = sorted({p for p in priorities.values() if p != 20})
    print(f"  Priorities used (QBS)          {', '.join(map(str, used))}")
    print("  Actor priorities:")
    for name, priority in sorted(priorities.items(), key=lambda kv: kv[1]):
        print(f"    {name:<26} {priority}")

    assert workload.l_rating == 0.5
    assert workload.duration_s == EXPERIMENT_DURATION_S == 600
    assert QBS_SOURCE_INTERVAL == 5
    assert QBS_BASIC_QUANTA_US == (500, 1000, 5000, 10000, 20000)
    assert RR_BASIC_QUANTA_US == (5000, 10000, 20000, 40000)
    assert used == [5, 10]
    # Priority 5: the output actors (tolls and accident notifications).
    for name in (
        "TollCalculation",
        "TollNotification",
        "AccidentNotification",
        "AccidentNotificationOut",
    ):
        assert priorities[name] == 5
    # Priority 10: statistics maintenance and accident detection.
    for name in ("Avgsv", "Avgs", "cars", "StoppedCarDetector",
                 "AccidentDetector", "InsertAccident"):
        assert priorities[name] == 10
