"""Subqueries: scalar, EXISTS, IN — including correlation."""

import pytest

from repro.sqldb import Database
from repro.sqldb.errors import QueryError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE seg (id INTEGER, lav FLOAT)")
    database.execute("CREATE TABLE acc (seg_id INTEGER, ts INTEGER)")
    for row in [(1, 30.0), (2, 50.0), (3, 20.0)]:
        database.execute(
            "INSERT INTO seg VALUES ($a, $b)", {"a": row[0], "b": row[1]}
        )
    for row in [(1, 100), (1, 200), (3, 50)]:
        database.execute(
            "INSERT INTO acc VALUES ($a, $b)", {"a": row[0], "b": row[1]}
        )
    return database


class TestScalarSubqueries:
    def test_uncorrelated(self, db):
        assert db.execute(
            "SELECT (SELECT COUNT(*) FROM acc)"
        ).scalar() == 3

    def test_correlated_counts_per_row(self, db):
        result = db.execute(
            "SELECT id, (SELECT COUNT(*) FROM acc WHERE seg_id = id) "
            "FROM seg ORDER BY id"
        )
        assert result.rows == [(1, 2), (2, 0), (3, 1)]

    def test_empty_scalar_subquery_is_null(self, db):
        assert db.execute(
            "SELECT (SELECT ts FROM acc WHERE seg_id = 99)"
        ).scalar() is None

    def test_multirow_scalar_subquery_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT (SELECT ts FROM acc)")

    def test_multicolumn_scalar_subquery_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT (SELECT seg_id, ts FROM acc WHERE ts = 50)")

    def test_subquery_in_where(self, db):
        result = db.execute(
            "SELECT id FROM seg WHERE "
            "(SELECT COUNT(*) FROM acc WHERE seg_id = id) = 0"
        )
        assert result.scalar() == 2

    def test_alias_shadowing_inner_first(self, db):
        # Inner binding wins for ambiguous names, as in standard SQL.
        result = db.execute(
            "SELECT id, (SELECT MAX(ts) FROM acc a WHERE a.seg_id = seg.id)"
            " FROM seg ORDER BY id"
        )
        assert result.rows == [(1, 200), (2, None), (3, 50)]


class TestExists:
    def test_exists_correlated(self, db):
        result = db.execute(
            "SELECT id FROM seg WHERE EXISTS "
            "(SELECT 1 FROM acc WHERE seg_id = id) ORDER BY id"
        )
        assert [r[0] for r in result] == [1, 3]

    def test_not_exists(self, db):
        result = db.execute(
            "SELECT id FROM seg WHERE NOT EXISTS "
            "(SELECT 1 FROM acc WHERE seg_id = id)"
        )
        assert result.scalar() == 2


class TestInSubquery:
    def test_in(self, db):
        result = db.execute(
            "SELECT id FROM seg WHERE id IN (SELECT seg_id FROM acc) "
            "ORDER BY id"
        )
        assert [r[0] for r in result] == [1, 3]

    def test_not_in(self, db):
        result = db.execute(
            "SELECT id FROM seg WHERE id NOT IN (SELECT seg_id FROM acc)"
        )
        assert result.scalar() == 2
