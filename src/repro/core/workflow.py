"""The workflow graph: actors wired by channels, plus validation helpers.

A :class:`Workflow` is purely structural — it knows nothing about execution.
Directors attach to a workflow, create receivers for its input ports and
drive the actors.  The graph helpers (``graph()``, ``downstream_of`` ...) are
what the Rate-Based scheduler uses to aggregate global selectivity/cost
along output paths.
"""

from __future__ import annotations

from typing import Iterable, Optional

import networkx as nx

from .actors import Actor, SourceActor
from .exceptions import WorkflowError
from .ports import Channel, InputPort, OutputPort
from .waves import WaveGenerator


class Workflow:
    """A named, validated graph of actors and channels."""

    def __init__(self, name: str):
        self.name = name
        self.actors: dict[str, Actor] = {}
        self.channels: list[Channel] = []
        self.expired_routes: list[tuple[InputPort, InputPort]] = []
        self.wave_generator = WaveGenerator()
        # Structure-versioned caches: the graph view and the topology are
        # rebuilt only when an actor or channel is added, not per query.
        # The RB scheduler re-derives rate priorities every period — with
        # a static structure that must not pay a graph rebuild each time.
        self._structure_version = 0
        self._graph_cache: Optional[nx.DiGraph] = None
        self._graph_version = -1
        self._topology_cache = None
        self._topology_version = -1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, actor: Actor) -> Actor:
        """Register *actor*; returns it so construction chains read well."""
        if actor.name in self.actors:
            raise WorkflowError(
                f"workflow {self.name!r} already has an actor named "
                f"{actor.name!r}"
            )
        if actor.workflow is not None and actor.workflow is not self:
            raise WorkflowError(
                f"actor {actor.name!r} already belongs to workflow "
                f"{actor.workflow.name!r}"
            )
        actor.workflow = self
        self.actors[actor.name] = actor
        self._structure_version += 1
        return actor

    def add_all(self, actors: Iterable[Actor]) -> None:
        for actor in actors:
            self.add(actor)

    def connect(
        self,
        source: Actor | OutputPort,
        sink: Actor | InputPort,
        source_port: Optional[str] = None,
        sink_port: Optional[str] = None,
    ) -> Channel:
        """Wire an output port to an input port.

        Accepts either explicit ports or actors; when an actor is given with
        no port name, it must have exactly one port of the right direction.
        """
        out_port = self._resolve_output(source, source_port)
        in_port = self._resolve_input(sink, sink_port)
        for actor in (out_port.actor, in_port.actor):
            if actor.workflow is not self:
                raise WorkflowError(
                    f"actor {actor.name!r} is not part of workflow "
                    f"{self.name!r}; add it first"
                )
        channel = Channel(out_port, in_port)
        self.channels.append(channel)
        self._structure_version += 1
        return channel

    @staticmethod
    def _resolve_output(source, port_name: Optional[str]) -> OutputPort:
        if isinstance(source, OutputPort):
            return source
        if isinstance(source, Actor):
            if port_name is not None:
                return source.output(port_name)
            if len(source.output_ports) == 1:
                return next(iter(source.output_ports.values()))
            raise WorkflowError(
                f"{source.name} has {len(source.output_ports)} output "
                "ports; name one explicitly"
            )
        raise WorkflowError(f"cannot connect from {source!r}")

    def connect_expired(
        self,
        windowed: Actor | InputPort,
        handler: Actor | InputPort,
        windowed_port: Optional[str] = None,
        handler_port: Optional[str] = None,
    ) -> None:
        """Route events expiring from a windowed input to a handler actor.

        The paper's expired-items queue: events that slide out of a window
        are optionally processed by another workflow activity.  The handler
        port receives them as ordinary events (through its own receiver),
        so any downstream semantics — including further windows — apply.
        """
        source_port = self._resolve_input(windowed, windowed_port)
        target_port = self._resolve_input(handler, handler_port)
        if source_port.window is None:
            raise WorkflowError(
                f"{source_port.full_name} has no window; nothing expires"
            )
        if target_port is source_port:
            raise WorkflowError("cannot route expired events to themselves")
        source_port.expired_to = target_port
        target_port.boundary = True  # fed by routing, not by a channel
        self.expired_routes.append((source_port, target_port))

    @staticmethod
    def _resolve_input(sink, port_name: Optional[str]) -> InputPort:
        if isinstance(sink, InputPort):
            return sink
        if isinstance(sink, Actor):
            if port_name is not None:
                return sink.input(port_name)
            if len(sink.input_ports) == 1:
                return next(iter(sink.input_ports.values()))
            raise WorkflowError(
                f"{sink.name} has {len(sink.input_ports)} input ports; "
                "name one explicitly"
            )
        raise WorkflowError(f"cannot connect to {sink!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sources(self) -> list[SourceActor]:
        return [a for a in self.actors.values() if a.is_source]

    @property
    def internal_actors(self) -> list[Actor]:
        return [a for a in self.actors.values() if not a.is_source]

    @property
    def sinks(self) -> list[Actor]:
        """Actors with no outgoing channels (workflow outputs)."""
        return [
            actor
            for actor in self.actors.values()
            if not any(port.outgoing for port in actor.output_ports.values())
        ]

    def graph(self) -> nx.DiGraph:
        """The actor-level connection graph (one node per actor).

        Cached against the structure version: repeated queries on a
        static workflow (validation, SDF schedule compilation, the RB
        scheduler's per-period rate aggregation) share one build.
        Callers must treat the returned graph as read-only.
        """
        if (
            self._graph_cache is not None
            and self._graph_version == self._structure_version
        ):
            return self._graph_cache
        g = nx.DiGraph()
        for actor in self.actors.values():
            g.add_node(actor.name, actor=actor)
        for channel in self.channels:
            g.add_edge(channel.source.actor.name, channel.sink.actor.name)
        self._graph_cache = g
        self._graph_version = self._structure_version
        return g

    def topology(
        self,
    ) -> tuple[Optional[list[str]], dict[str, tuple[str, ...]]]:
        """``(topological_order, successors)`` — cached like :meth:`graph`.

        ``topological_order`` is ``None`` for cyclic workflows.  The
        successor map covers every actor.  This is the static skeleton
        the Rate-Based scheduler walks once per period; deriving it per
        call made rate re-evaluation O(A + E) in graph-build work alone.
        """
        if (
            self._topology_cache is not None
            and self._topology_version == self._structure_version
        ):
            return self._topology_cache
        graph = self.graph()
        successors = {
            name: tuple(graph.successors(name)) for name in graph.nodes
        }
        try:
            order: Optional[list[str]] = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible:
            order = None
        self._topology_cache = (order, successors)
        self._topology_version = self._structure_version
        return self._topology_cache

    def downstream_of(self, actor: Actor) -> list[Actor]:
        """Actors directly connected downstream of *actor*."""
        names = {
            channel.sink.actor.name
            for port in actor.output_ports.values()
            for channel in port.outgoing
        }
        return [self.actors[name] for name in sorted(names)]

    def upstream_of(self, actor: Actor) -> list[Actor]:
        names = {
            channel.source.actor.name
            for port in actor.input_ports.values()
            for channel in port.incoming
        }
        return [self.actors[name] for name in sorted(names)]

    def to_dot(self) -> str:
        """Graphviz DOT text for the workflow (sources/sinks shaped).

        Windowed inputs annotate their edge with the window clause, and
        expired-item routes render as dashed edges — enough to eyeball a
        workflow the way the paper's Figures 10-15 draw theirs.
        """
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for actor in self.actors.values():
            if actor.is_source:
                shape = "invhouse"
            elif actor in self.sinks:
                shape = "house"
            else:
                shape = "box"
            label = actor.name
            if actor.priority != 20:
                label += f"\\np={actor.priority}"
            lines.append(
                f'  "{actor.name}" [shape={shape}, label="{label}"];'
            )
        for channel in self.channels:
            sink_port = channel.sink
            attributes = []
            if sink_port.window is not None:
                spec = sink_port.window
                attributes.append(
                    f'label="{{{spec.size},{spec.step},'
                    f'{spec.measure.value}}}"'
                )
            suffix = f" [{', '.join(attributes)}]" if attributes else ""
            lines.append(
                f'  "{channel.source.actor.name}" -> '
                f'"{sink_port.actor.name}"{suffix};'
            )
        for source_port, target_port in self.expired_routes:
            lines.append(
                f'  "{source_port.actor.name}" -> '
                f'"{target_port.actor.name}" '
                '[style=dashed, label="expired"];'
            )
        lines.append("}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`WorkflowError` when the graph is malformed."""
        if not self.actors:
            raise WorkflowError(f"workflow {self.name!r} has no actors")
        problems: list[str] = []
        for actor in self.actors.values():
            for port in actor.input_ports.values():
                if not port.incoming and not actor.is_source and not port.boundary:
                    problems.append(
                        f"input port {port.full_name} is not connected"
                    )
        graph = self.graph()
        routed = {
            port.actor.name
            for pair in self.expired_routes
            for port in pair
        }
        isolated = [
            name
            for name in graph.nodes
            if graph.degree(name) == 0
            and name not in routed
            and len(self.actors) > 1
        ]
        for name in isolated:
            problems.append(f"actor {name} is isolated")
        if problems:
            raise WorkflowError(
                f"workflow {self.name!r} is malformed: " + "; ".join(problems)
            )

    def __repr__(self) -> str:
        return (
            f"Workflow({self.name!r}, actors={len(self.actors)}, "
            f"channels={len(self.channels)})"
        )
