"""Tuple-based window semantics (size/step/group-by/delete_used_events)."""

import pytest

from repro.core.events import CWEvent
from repro.core.exceptions import WindowError
from repro.core.waves import WaveTag
from repro.core.windows import (
    ConsumptionMode,
    Measure,
    Window,
    WindowOperator,
    WindowSpec,
)


def make_event(value, ts=0, serial=None):
    serial = serial if serial is not None else make_event.counter
    make_event.counter += 1
    return CWEvent(value, ts, WaveTag.root(serial))


make_event.counter = 1


def feed(operator, values, ts_fn=lambda i: i * 10):
    produced = []
    for index, value in enumerate(values):
        produced.extend(operator.put(make_event(value, ts_fn(index))))
    return produced


class TestSpecValidation:
    def test_size_must_be_positive(self):
        with pytest.raises(WindowError):
            WindowSpec.tokens(0)

    def test_step_must_be_positive(self):
        with pytest.raises(WindowError):
            WindowSpec(4, 0)

    def test_timeout_must_be_positive(self):
        with pytest.raises(WindowError):
            WindowSpec(4, 1, timeout=0)

    def test_continuous_mode_forces_delete(self):
        spec = WindowSpec(4, 4, mode=ConsumptionMode.CONTINUOUS)
        assert spec.delete_used_events

    def test_mode_inferred_from_delete_flag(self):
        assert (
            WindowSpec(4, 4, delete_used_events=True).mode
            is ConsumptionMode.CONTINUOUS
        )
        assert (
            WindowSpec(4, 1).mode is ConsumptionMode.UNRESTRICTED
        )


class TestSlidingWindows:
    def test_sliding_size4_step1(self):
        op = WindowOperator(WindowSpec.tokens(4, 1))
        produced = feed(op, list(range(6)))
        assert [w.values for w in produced] == [
            [0, 1, 2, 3],
            [1, 2, 3, 4],
            [2, 3, 4, 5],
        ]

    def test_slide_pushes_to_expired_queue(self):
        op = WindowOperator(WindowSpec.tokens(3, 1))
        feed(op, list(range(5)))
        # Windows [0,1,2], [1,2,3], [2,3,4]: 0, 1 and 2 slid out of scope.
        assert [e.value for e in op.expired] == [0, 1, 2]

    def test_step_larger_than_one(self):
        op = WindowOperator(WindowSpec.tokens(2, 2))
        produced = feed(op, list(range(6)))
        assert [w.values for w in produced] == [[0, 1], [2, 3], [4, 5]]

    def test_delete_used_events_consumes_whole_window(self):
        op = WindowOperator(
            WindowSpec.tokens(3, delete_used_events=True)
        )
        produced = feed(op, list(range(7)))
        assert [w.values for w in produced] == [[0, 1, 2], [3, 4, 5]]
        # Consumed events are not expired items — they were used.
        assert not op.expired

    def test_window_smaller_than_size_not_produced(self):
        op = WindowOperator(WindowSpec.tokens(4, 1))
        assert feed(op, [1, 2, 3]) == []
        assert op.pending_count() == 3


class TestGroupBy:
    def test_groups_form_windows_independently(self):
        spec = WindowSpec.tokens(2, 2, group_by=lambda e: e.value % 2)
        op = WindowOperator(spec)
        produced = feed(op, [0, 1, 2, 3])
        assert sorted(w.values for w in produced) == [[0, 2], [1, 3]]
        keys = {w.group_key for w in produced}
        assert keys == {0, 1}

    def test_group_by_field_name(self):
        spec = WindowSpec.tokens(2, 2, group_by="car")
        op = WindowOperator(spec)
        events = [
            make_event({"car": "a", "v": i}) for i in range(2)
        ] + [make_event({"car": "b", "v": 9})]
        produced = []
        for event in events:
            produced.extend(op.put(event))
        assert len(produced) == 1
        assert produced[0].group_key == "a"

    def test_group_by_field_tuple(self):
        spec = WindowSpec.tokens(1, 1, group_by=("x", "y"))
        op = WindowOperator(spec)
        produced = op.put(make_event({"x": 1, "y": 2}))
        assert produced[0].group_key == (1, 2)

    def test_group_keys_listing(self):
        spec = WindowSpec.tokens(10, 1, group_by=lambda e: e.value)
        op = WindowOperator(spec)
        feed(op, ["a", "b", "a"])
        assert op.group_keys == ["a", "b"]


class TestWindowObject:
    def test_window_timestamp_is_newest_event(self):
        op = WindowOperator(WindowSpec.tokens(3, 1))
        produced = feed(op, [1, 2, 3])
        assert produced[0].timestamp == 20
        assert produced[0].oldest_timestamp == 0

    def test_empty_window_timestamp_raises(self):
        with pytest.raises(WindowError):
            Window([]).timestamp

    def test_iteration_and_indexing(self):
        op = WindowOperator(WindowSpec.tokens(2, 1))
        produced = feed(op, ["a", "b"])
        window = produced[0]
        assert len(window) == 2
        assert window[0].value == "a"
        assert [e.value for e in window] == ["a", "b"]


class TestForceTimeout:
    def test_flushes_partial_token_windows(self):
        op = WindowOperator(WindowSpec.tokens(4, 1))
        feed(op, [1, 2])
        forced = op.force_timeout()
        assert len(forced) == 1
        assert forced[0].values == [1, 2]
        assert forced[0].forced

    def test_counts_toward_total_windows(self):
        op = WindowOperator(WindowSpec.tokens(4, 1))
        feed(op, [1])
        op.force_timeout()
        assert op.total_windows == 1

    def test_drain_expired(self):
        op = WindowOperator(WindowSpec.tokens(2, 1))
        feed(op, [1, 2, 3])
        drained = op.drain_expired()
        assert [e.value for e in drained] == [1, 2]
        assert not op.expired


class TestRecentMode:
    def test_burst_collapses_to_newest_window(self):
        spec = WindowSpec(
            2, 1, Measure.TOKENS, mode=ConsumptionMode.RECENT
        )
        op = WindowOperator(spec)
        event_a = make_event(1)
        event_b = make_event(2)
        op.put(event_a)
        produced = op.put(event_b)
        assert len(produced) == 1
