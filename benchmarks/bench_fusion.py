"""Operator-chain fusion throughput on a deep map-pipeline micro-workload.

The headline number of the fusion work: end-to-end events/second through
a 12-hop map chain, fused vs. unfused, both on top of the event-train
fast path (``train_size=64``).  Fusion collapses the twelve per-hop
dispatches (decision, dequeue, context, receiver, re-enqueue) into one
composed firing that traverses the whole chain with zero intermediate
queue churn, so the win multiplies with chain depth — and it is pure
wall-clock: the bench canonicalizes the sink trace and asserts the fused
runs produced exactly what the unfused run did before comparing timings.

Gated two ways by ``make bench-fusion``:

* absolute means vs. ``baselines/fusion.json`` (2x tolerance, like the
  train and dispatch gates) so the composed path cannot silently regress
  to per-hop dispatch cost;
* a relative gate (``test_fusion_speedup_gate``) asserting the fused
  chain is at least 2x faster than the unfused ``train_size=64`` run on
  this machine, whatever its absolute speed.
"""

import time

import pytest

from repro.core.actors import MapActor, SinkActor, SourceActor
from repro.core.workflow import Workflow
from repro.fusion import fuse_workflow
from repro.simulation import CostModel, SimulationRuntime, VirtualClock
from repro.stafilos import RoundRobinScheduler, SCWFDirector

#: Enough arrivals that per-hop dispatch overhead dominates setup cost.
N_EVENTS = 4_000

#: Deep enough that intermediate-queue churn, not the endpoints,
#: dominates the unfused run (a 1-map relay has nothing to fuse).
CHAIN_DEPTH = 12

VARIANTS = {"unfused_train64": False, "fused_train64": True}


def run_chain(fuse):
    """Source -> m1 -> ... -> m8 -> sink; canonicalized sink trace."""
    workflow = Workflow("fusion-micro")
    source = SourceActor("src", arrivals=[(i, i) for i in range(N_EVENTS)])
    source.add_output("out")
    maps = [
        MapActor(f"m{hop}", lambda v: v + 1) for hop in range(CHAIN_DEPTH)
    ]
    sink = SinkActor("sink")
    workflow.add_all([source, *maps, sink])
    workflow.connect(source, maps[0])
    for upstream, downstream in zip(maps, maps[1:]):
        workflow.connect(upstream, downstream)
    workflow.connect(maps[-1], sink)
    if fuse:
        report = fuse_workflow(workflow)
        assert report.fused_actors == CHAIN_DEPTH
    clock = VirtualClock()
    director = SCWFDirector(
        RoundRobinScheduler(10_000),
        clock,
        CostModel(),
        train_size=64,
    )
    director.attach(workflow)
    SimulationRuntime(director, clock).run(30.0, drain=True)
    return [
        (event.timestamp, tuple(event.wave.path), event.value)
        for _, event in sink.items
    ]


@pytest.mark.parametrize("label", sorted(VARIANTS))
def test_fusion_chain_throughput(benchmark, label):
    """Absolute chain cost fused/unfused (gated vs. fusion.json)."""
    trace = benchmark.pedantic(
        run_chain, args=(VARIANTS[label],), rounds=3, iterations=1
    )
    assert len(trace) == N_EVENTS


def _best_of(runs, fn, *args):
    best = None
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def test_fusion_speedup_gate():
    """The fused chain must be >= 2x events/sec of the unfused run.

    Both sides ride ``train_size=64``, so the gate isolates what fusion
    itself buys on top of event trains.  Bit-identity is asserted first
    so a "speedup" can never come from doing different work.
    """
    t_unfused, trace_unfused = _best_of(3, run_chain, False)
    t_fused, trace_fused = _best_of(3, run_chain, True)
    assert trace_fused == trace_unfused  # same results, fewer dispatches
    speedup = t_unfused / t_fused
    assert speedup >= 2.0, (
        f"fusion speedup {speedup:.2f}x < 2.0x floor "
        f"(unfused={t_unfused * 1e3:.1f}ms fused={t_fused * 1e3:.1f}ms)"
    )
