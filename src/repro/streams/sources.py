"""Push sources: how external streams enter a continuous workflow.

Three source flavours:

* :class:`ReplaySource` — replays a recorded trace (arrival schedule);
* :class:`PoissonSource` — synthetic arrivals with a (possibly
  time-varying) rate, generated lazily from a seed;
* :class:`TCPStreamSource` — a real push connection: a background thread
  reads newline-delimited records from a TCP socket and appends them to
  the pending-arrival queue, which the director drains at the pace its
  execution model dictates (paper §2.2).
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Callable, Iterable, Optional

from ..core.actors import SourceActor
from ..core.timekeeper import US_PER_S
from ..observability import tracer as _obs
from .codecs import JSONLinesCodec


class ReplaySource(SourceActor):
    """A named, single-output trace replay source."""

    def __init__(
        self,
        name: str,
        arrivals: Iterable[tuple[int, Any]],
        output: str = "out",
    ):
        super().__init__(name, arrivals)
        self.add_output(output)


class PoissonSource(SourceActor):
    """Synthetic arrivals: exponential gaps around ``rate_fn(t_s)``/s."""

    def __init__(
        self,
        name: str,
        rate_fn: Callable[[float], float],
        payload_fn: Callable[[int], Any],
        duration_s: float,
        seed: int = 1,
        output: str = "out",
    ):
        import random

        rng = random.Random(seed)
        arrivals: list[tuple[int, Any]] = []
        t_s = 0.0
        index = 0
        while t_s < duration_s:
            rate = max(rate_fn(t_s), 1e-9)
            t_s += rng.expovariate(rate)
            if t_s >= duration_s:
                break
            arrivals.append((int(t_s * US_PER_S), payload_fn(index)))
            index += 1
        super().__init__(name, arrivals)
        self.add_output(output)


class TCPStreamSource(SourceActor):
    """Receives push updates over a TCP connection.

    A reader thread accepts newline-delimited records and stamps them with
    their receive time; the director pumps them into the workflow at the
    rate its execution model dictates.  The source is thread-safe: the
    reader appends under a lock while the engine drains.
    """

    unbounded = True

    #: Threading/network plumbing is structural (rebuilt by ``listen``)
    #: and unpicklable; the codec and clock are configuration.  Unlike a
    #: replay source, the pending queue *is* checkpointed here: live
    #: arrivals exist nowhere else, so dropping them would lose data.
    checkpoint_exclude = frozenset(
        {"_lock", "_thread", "_server", "_connection", "_stopping",
         "codec", "clock", "_sole_output_name"}
    )

    def __init__(
        self,
        name: str,
        host: str = "127.0.0.1",
        port: int = 0,
        codec=None,
        clock=None,
        output: str = "out",
    ):
        super().__init__(name, arrivals=[])
        self.add_output(output)
        self.codec = codec or JSONLinesCodec()
        self.clock = clock
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[socket.socket] = None
        self._connection: Optional[socket.socket] = None
        self._stopping = threading.Event()
        self.received = 0
        self.decode_errors = 0
        self._host = host
        self._port = port

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def listen(self) -> tuple[str, int]:
        """Bind and start accepting one publisher; returns (host, port)."""
        self._server = socket.create_server((self._host, self._port))
        self._server.settimeout(0.2)
        self._stopping.clear()
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-src-{self.name}", daemon=True
        )
        self._thread.start()
        return self._server.getsockname()[:2]

    def stop(self, join_timeout: float = 2.0) -> bool:
        """Shut the reader down even while a peer holds its connection open.

        Order matters: the stop flag is raised first, then *both* sockets
        (live connection and listener) are force-closed so a reader
        blocked in ``recv``/``accept`` on a stalling peer wakes with an
        ``OSError`` immediately instead of waiting out its poll timeout.
        The thread is then joined with *join_timeout*; returns ``True``
        when the reader thread has fully exited.
        """
        self._stopping.set()
        connection, self._connection = self._connection, None
        if connection is not None:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
            self._server = None
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=join_timeout)
            return not thread.is_alive()
        return True

    def close(self) -> None:
        """Backwards-compatible alias for :meth:`stop`."""
        self.stop()

    def _accept_loop(self) -> None:
        server = self._server
        assert server is not None
        while not self._stopping.is_set():
            try:
                connection, _ = server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self._connection = connection
            try:
                with connection:
                    self._read_lines(connection)
            except OSError:
                return
            finally:
                self._connection = None

    def _read_lines(self, connection: socket.socket) -> None:
        connection.settimeout(0.2)
        buffer = b""
        while not self._stopping.is_set():
            try:
                chunk = connection.recv(4096)
            except socket.timeout:
                continue
            except OSError:
                return
            if not chunk:
                return
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                self._ingest(line.decode("utf-8", errors="replace"))

    def _ingest(self, line: str) -> None:
        if not line.strip():
            return
        try:
            payload = self.codec.decode(line)
        except Exception:
            self.decode_errors += 1
            return
        timestamp = self._now_us()
        with self._lock:
            self._pending.append((timestamp, payload))
            self.received += 1
            received = self.received
        if _obs.ENABLED:
            # RecordingTracer appends to a deque, which is safe from the
            # reader thread.
            _obs._TRACER.counter("source.received", timestamp, received, self.name)

    def _now_us(self) -> int:
        if self.clock is not None:
            return self.clock.now_us
        import time

        return int(time.monotonic() * US_PER_S)

    # ------------------------------------------------------------------
    # SourceActor overrides (thread-safe over the growing list)
    # ------------------------------------------------------------------
    def next_arrival_time(self) -> Optional[int]:
        with self._lock:
            if self._cursor >= len(self._pending):
                return None
            return self._pending[self._cursor][0]

    def pending_arrivals(self, now: int) -> int:
        with self._lock:
            count = 0
            index = self._cursor
            while (
                index < len(self._pending)
                and self._pending[index][0] <= now
            ):
                count += 1
                index += 1
            return count

    def pump(self, ctx) -> int:
        emitted = 0
        limit = self.batch_limit
        while True:
            with self._lock:
                if self._cursor >= len(self._pending):
                    break
                timestamp, value = self._pending[self._cursor]
                if timestamp > ctx.now:
                    break
                self._cursor += 1
            self.emit_arrival(ctx, timestamp, value)
            emitted += 1
            if limit is not None and emitted >= limit:
                break
        if emitted:
            if _obs.ENABLED:
                _obs._TRACER.instant(
                    "source.pump", ctx.now, self.name, emitted=emitted
                )
        return emitted

    # ------------------------------------------------------------------
    # Checkpointable protocol (lock-guarded over the live queue)
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        """Snapshot the live arrival queue + cursor under the reader lock.

        The generic :meth:`~repro.core.actors.Actor.state_dump` applies,
        but the reader thread may be appending concurrently — the lock
        freezes one consistent ``(pending, cursor)`` pair, and the queue
        is copied (not referenced) because the reader keeps mutating it
        after the dump returns.
        """
        with self._lock:
            state = super().state_dump()
            state["plain"]["_pending"] = list(self._pending)
            return state

    def state_restore(self, state: dict) -> None:
        """Re-apply a dump under the lock (reader may already be live)."""
        with self._lock:
            super().state_restore(state)


def publish_lines(
    host: str, port: int, payloads: Iterable[Any], codec=None
) -> int:
    """Publish *payloads* to a listening :class:`TCPStreamSource`."""
    codec = codec or JSONLinesCodec()
    sent = 0
    with socket.create_connection((host, port), timeout=2.0) as connection:
        for payload in payloads:
            connection.sendall(
                (codec.encode(payload) + "\n").encode("utf-8")
            )
            sent += 1
    return sent
