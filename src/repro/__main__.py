"""``python -m repro``: the reproduction's command-line interface."""

import signal
import sys

from .harness.cli import main

if __name__ == "__main__":
    # Die quietly when downstream pipes close early (e.g. `| head`).
    try:
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    except (AttributeError, ValueError):  # pragma: no cover - non-POSIX
        pass
    try:
        sys.exit(main())
    except BrokenPipeError:  # pragma: no cover - racing pipe teardown
        sys.exit(0)
