"""Operator-chain fusion + the adaptive meta-scheduler (``repro.fusion``).

The tentpole invariants:

* **fusion is invisible** — for every scheduler and every train size,
  a fused run produces bit-identical sink outputs (values, external
  timestamps, wave-tag paths, ``last_in_wave`` marks) and identical
  count-based per-actor statistics versus the unfused engine.  Only the
  engine-clock *trajectory* (fewer dispatch overheads) and therefore
  engine-time-stamped series (sink arrival times, input-rate windows,
  the source's cost batching) may differ;
* **fused execution is train-size independent** — the fused engine is
  *fully* bit-identical (clock included) across train sizes;
* fused engines checkpoint and restore like any other;
* the ADAPT meta-policy switches its hosted policy deterministically,
  migrates ready work losslessly, round-trips through the checkpoint
  protocol, and owns the quantum (the overload controller's AIMD loop
  backs off).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpoint import (
    capture_snapshot,
    deserialize_snapshot,
    restore_snapshot,
    serialize_snapshot,
    structure_fingerprint,
)
from repro.core.actors import Actor, MapActor, SinkActor, SourceActor
from repro.core.exceptions import SimulationError
from repro.core.windows import WindowSpec
from repro.core.workflow import Workflow
from repro.fusion import detect_chains, FusedChain, fuse_workflow
from repro.overload import OverloadController, QoSPolicy
from repro.simulation.clock import VirtualClock
from repro.simulation.cost_model import CostModel
from repro.simulation.runtime import SimulationRuntime
from repro.stafilos.schedulers import (
    AdaptiveScheduler,
    FIFOScheduler,
    QuantumPriorityScheduler,
    RateBasedScheduler,
    RoundRobinScheduler,
)
from repro.stafilos.scwf_director import SCWFDirector

TRAIN_SIZES = (1, 64, None)

SCHEDULERS = (
    lambda: QuantumPriorityScheduler(500),
    lambda: RoundRobinScheduler(10_000),
    lambda: RateBasedScheduler(),
    lambda: FIFOScheduler(),
    lambda: AdaptiveScheduler(control_period_us=200_000),
)

#: Stats keys that must match fused vs unfused for *every* actor.  The
#: source's invocation costs depend on how arrivals batch per pump,
#: which follows the engine-clock trajectory — legitimately different —
#: so cost/invocation keys are only compared for the chain members,
#: where fusion replays the per-event charges exactly.
COUNT_KEYS = (
    "inputs_total",
    "outputs_total",
    "failures",
    "retries",
    "dead_letters",
    "selectivity",
    "output_rate_per_s",
)
MEMBER_KEYS = COUNT_KEYS + ("invocations", "avg_cost_us", "ewma_cost_us")


def _mixed_fn(value):
    """Deterministic mixed selectivity: drop some, fan out others."""
    if value % 7 == 6:
        return None
    if value % 3 == 0:
        return [value, value * 2]
    return value


MEMBER_NAMES = ("m1", "m2", "m3")


def _build_relay(arrivals, fuse):
    """src -> m1 -> m2 -> m3 -> sink, the canonical fusable pipeline."""
    workflow = Workflow("fusion-relay")
    source = SourceActor("src", arrivals=arrivals)
    source.add_output("out")
    m1 = MapActor("m1", lambda v: v + 1)
    m2 = MapActor("m2", _mixed_fn)
    m3 = MapActor("m3", lambda v: v - 1)
    sink = SinkActor("sink")
    workflow.add_all([source, m1, m2, m3, sink])
    workflow.connect(source, m1)
    workflow.connect(m1, m2)
    workflow.connect(m2, m3)
    workflow.connect(m3, sink)
    if fuse:
        report = fuse_workflow(workflow)
        assert report.chains == (MEMBER_NAMES,)
    return workflow, sink


def _run(arrivals, scheduler_index, train_size, fuse):
    workflow, sink = _build_relay(arrivals, fuse)
    clock = VirtualClock()
    director = SCWFDirector(
        SCHEDULERS[scheduler_index](),
        clock,
        CostModel(),
        train_size=train_size,
    )
    director.attach(workflow)
    SimulationRuntime(director, clock).run(10.0, drain=True)
    canon = [
        (
            event.timestamp,
            tuple(event.wave.path),
            repr(event.value),
            event.last_in_wave,
        )
        for _, event in sink.items
    ]
    snapshot = director.statistics.snapshot(20_000_000)
    stats = {
        name: {
            key: entry[key]
            for key in (
                MEMBER_KEYS if name in MEMBER_NAMES else COUNT_KEYS
            )
        }
        for name, entry in snapshot.items()
    }
    return canon, stats, clock.now_us


# ----------------------------------------------------------------------
# Chain detection and workflow rewriting
# ----------------------------------------------------------------------
def _chain_names(workflow):
    return [
        tuple(actor.name for actor in chain)
        for chain in detect_chains(workflow)
    ]


class TestChainDetection:
    def test_linear_map_run_detected(self):
        workflow, _ = _build_relay([(0, 1)], fuse=False)
        assert _chain_names(workflow) == [MEMBER_NAMES]

    def test_window_breaks_the_chain(self):
        workflow, _ = _build_relay([(0, 1)], fuse=False)
        windowed = MapActor(
            "agg", lambda vs: sum(vs), window=WindowSpec.tokens(3, 3)
        )
        # Splice the windowed actor between m2 and m3: only the pair
        # upstream of it stays fusable.
        workflow.actors["m2"].output_ports["out"].outgoing.clear()
        workflow.actors["m3"].input_ports["in"].incoming.clear()
        workflow.channels = [
            ch
            for ch in workflow.channels
            if not (
                ch.source.actor.name == "m2"
                and ch.sink.actor.name == "m3"
            )
        ]
        workflow.add(windowed)
        workflow.connect(workflow.actors["m2"], windowed)
        workflow.connect(windowed, workflow.actors["m3"])
        assert _chain_names(workflow) == [("m1", "m2")]

    def test_branch_breaks_the_chain(self):
        workflow, _ = _build_relay([(0, 1)], fuse=False)
        tap = SinkActor("tap")
        workflow.add(tap)
        workflow.connect(workflow.actors["m2"].output_ports["out"], tap)
        # m2 now fans out, so the m2 -> m3 link is no longer exclusive
        # and the chain ends at m2.  A fanning-out *tail* is fine — the
        # fused output port broadcasts exactly like m2's did.
        assert _chain_names(workflow) == [("m1", "m2")]

    def test_single_map_not_a_chain(self):
        workflow = Workflow("one-map")
        source = SourceActor("src", arrivals=[(0, 1)])
        source.add_output("out")
        relay = MapActor("relay", lambda v: v)
        sink = SinkActor("sink")
        workflow.add_all([source, relay, sink])
        workflow.connect(source, relay)
        workflow.connect(relay, sink)
        assert detect_chains(workflow) == []

    def test_fuse_rewrites_topology(self):
        workflow, _ = _build_relay([(0, 1)], fuse=False)
        report = fuse_workflow(workflow)
        assert bool(report)
        assert report.chains == (MEMBER_NAMES,)
        assert report.fused_actors == 3
        # Members are gone; the chain takes the head's name.
        assert set(workflow.actors) == {"src", "m1", "sink"}
        fused = workflow.actors["m1"]
        assert isinstance(fused, FusedChain)
        assert fused.member_names == MEMBER_NAMES
        # Exactly src->chain and chain->sink channels remain.
        assert len(workflow.channels) == 2

    def test_fuse_is_idempotent(self):
        workflow, _ = _build_relay([(0, 1)], fuse=False)
        assert bool(fuse_workflow(workflow))
        again = fuse_workflow(workflow)
        assert not bool(again)
        assert again.chains == ()

    def test_fused_fingerprint_differs_from_unfused(self):
        """Restoring a fused snapshot onto an unfused engine must fail
        loudly: the structure fingerprints differ."""

        def engine(fuse):
            workflow, _ = _build_relay([(0, 1)], fuse=fuse)
            clock = VirtualClock()
            director = SCWFDirector(
                RoundRobinScheduler(10_000), clock, CostModel()
            )
            director.attach(workflow)
            return director

        fused = structure_fingerprint(engine(True))
        unfused = structure_fingerprint(engine(False))
        assert fused != unfused
        assert set(fused["actors"]) == {"src", "m1", "sink"}


# ----------------------------------------------------------------------
# The bit-identity oracle
# ----------------------------------------------------------------------
class TestFusionOracle:
    """Fusion changes dispatch count, never observable results."""

    @given(
        st.lists(
            st.integers(min_value=0, max_value=200_000),
            min_size=1,
            max_size=30,
        ),
        st.sampled_from(range(len(SCHEDULERS))),
    )
    @settings(max_examples=25, deadline=None)
    def test_fused_matches_unfused(self, offsets, scheduler_index):
        arrivals = [(ts, i) for i, ts in enumerate(sorted(offsets))]
        canon, stats, _ = _run(arrivals, scheduler_index, 1, fuse=False)
        for train_size in TRAIN_SIZES:
            fused_canon, fused_stats, _ = _run(
                arrivals, scheduler_index, train_size, fuse=True
            )
            assert fused_canon == canon, f"train_size={train_size}"
            assert fused_stats == stats, f"train_size={train_size}"

    @given(
        st.lists(
            st.integers(min_value=0, max_value=200_000),
            min_size=1,
            max_size=30,
        ),
        st.sampled_from(range(len(SCHEDULERS))),
    )
    @settings(max_examples=15, deadline=None)
    def test_fused_train_sizes_fully_bit_identical(
        self, offsets, scheduler_index
    ):
        """Within the fused engine, train size is invisible even to the
        clock: one composed firing per consumed event either way."""
        arrivals = [(ts, i) for i, ts in enumerate(sorted(offsets))]
        reference = _run(arrivals, scheduler_index, 1, fuse=True)
        for train_size in TRAIN_SIZES[1:]:
            assert (
                _run(arrivals, scheduler_index, train_size, fuse=True)
                == reference
            ), f"train_size={train_size}"

    def test_failing_member_discards_charges(self):
        """A mid-chain failure under fail-stop leaves no partial stats."""

        def boom(value):
            if value == 3:
                raise ValueError("boom")
            return value

        workflow = Workflow("fail-chain")
        source = SourceActor("src", arrivals=[(i * 1_000, i) for i in range(5)])
        source.add_output("out")
        m1 = MapActor("m1", lambda v: v)
        m2 = MapActor("m2", boom)
        sink = SinkActor("sink")
        workflow.add_all([source, m1, m2, sink])
        workflow.connect(source, m1)
        workflow.connect(m1, m2)
        workflow.connect(m2, sink)
        assert bool(fuse_workflow(workflow))
        clock = VirtualClock()
        director = SCWFDirector(
            RoundRobinScheduler(10_000), clock, CostModel()
        )
        director.attach(workflow)
        with pytest.raises(Exception):
            SimulationRuntime(director, clock).run(10.0, drain=True)
        fused = workflow.actors["m1"]
        # The aborted firing zeroed its pending charges.
        assert fused.take_pending_cost() == 0


# ----------------------------------------------------------------------
# Fused engines checkpoint like any other
# ----------------------------------------------------------------------
class TestFusedCheckpoint:
    def test_mid_run_snapshot_restores_onto_fresh_fused_engine(self):
        arrivals = [(i * 100_000, i) for i in range(20)]

        def engine():
            workflow, sink = _build_relay(arrivals, fuse=True)
            clock = VirtualClock()
            director = SCWFDirector(
                RoundRobinScheduler(10_000),
                clock,
                CostModel(seed=5),
                train_size=64,
            )
            director.attach(workflow)
            return director, clock, sink

        director, clock, sink = engine()
        runtime = SimulationRuntime(director, clock)
        runtime.run(1.0)
        payload = serialize_snapshot(capture_snapshot(director))
        runtime.run(3.0)
        reference = [
            (event.timestamp, repr(event.value)) for _, event in sink.items
        ]

        fresh_director, fresh_clock, fresh_sink = engine()
        fresh_director.initialize_all()
        restore_snapshot(fresh_director, deserialize_snapshot(payload))
        SimulationRuntime(fresh_director, fresh_clock).run(3.0)
        assert [
            (event.timestamp, repr(event.value))
            for _, event in fresh_sink.items
        ] == reference
        assert (
            fresh_director.total_internal_firings
            == director.total_internal_firings
        )


# ----------------------------------------------------------------------
# The ADAPT meta-policy
# ----------------------------------------------------------------------
def _adaptive_engine(arrivals, control_period_us=100_000, train_size=64):
    workflow, sink = _build_relay(arrivals, fuse=False)
    clock = VirtualClock()
    scheduler = AdaptiveScheduler(control_period_us=control_period_us)
    director = SCWFDirector(
        scheduler, clock, CostModel(), train_size=train_size
    )
    director.attach(workflow)
    return director, scheduler, clock, sink


class TestAdaptiveScheduler:
    def test_unknown_initial_kind_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveScheduler(initial_kind="EDF")

    def test_switches_and_loses_nothing(self):
        arrivals = [(i * 200, i) for i in range(3_000)]
        director, scheduler, clock, sink = _adaptive_engine(arrivals)
        SimulationRuntime(director, clock).run(10.0, drain=True)
        assert scheduler.switches >= 1
        # Every event the chain lets through reaches the sink: nothing
        # is dropped across a policy switch (mixed_fn drops %7==6 of
        # m1's output and duplicates %3==0).
        expected = 0
        for value in range(3_000):
            v = value + 1
            if v % 7 == 6:
                continue
            expected += 2 if v % 3 == 0 else 1
        assert len(sink.items) == expected

    def test_deterministic_across_runs(self):
        arrivals = [(i * 300, i) for i in range(2_000)]
        results = []
        for _ in range(2):
            director, scheduler, clock, sink = _adaptive_engine(arrivals)
            SimulationRuntime(director, clock).run(10.0, drain=True)
            results.append(
                (
                    [(e.timestamp, repr(e.value)) for _, e in sink.items],
                    scheduler.switches,
                    scheduler.hosted_kind,
                    clock.now_us,
                )
            )
        assert results[0] == results[1]

    def test_decision_bands(self):
        scheduler = AdaptiveScheduler()
        assert scheduler._decide(1_000) == ("QBS", 500)
        assert scheduler._decide(100) == ("QBS", 1_000)
        assert scheduler._decide(0) == ("RR", scheduler.RR_SLICE_US)

    def test_quantum_retune_in_place(self):
        """Same hosted kind, different band: no switch, just a retune."""
        from repro.core.events import CWEvent
        from repro.core.waves import WaveTag

        director, scheduler, clock, _ = _adaptive_engine(
            [(0, 0)], control_period_us=1_000
        )
        director.initialize_all()
        hosted = scheduler.hosted
        assert scheduler.quantum_us == scheduler.DEFAULT_QUANTUM_US
        m1 = director.workflow.actors["m1"]
        for serial in range(300):
            scheduler.enqueue(
                m1,
                "in",
                CWEvent(serial, 0, WaveTag.root(serial)),
            )
        # Two control-period boundaries after the dwell: the huge
        # backlog lands in the tightest QBS band — same kind, so the
        # hosted policy is retuned in place, not replaced.
        scheduler.on_iteration_end(10_000)
        scheduler.on_iteration_end(30_000)
        scheduler.on_iteration_end(60_000)
        assert scheduler.hosted_kind == "QBS"
        assert scheduler.hosted is hosted
        assert scheduler.switches == 0
        assert scheduler.quantum_us == 500
        assert hosted.basic_quantum_us == 500

    def test_state_roundtrip_rebuilds_hosted_kind(self):
        arrivals = [(i * 200, i) for i in range(2_000)]
        director, scheduler, clock, _ = _adaptive_engine(arrivals)
        SimulationRuntime(director, clock).run(10.0, drain=True)
        assert scheduler.switches >= 1
        dump = scheduler.state_dump()
        assert dump["adaptive"]["kind"] == scheduler.hosted_kind

        fresh_director, fresh_scheduler, _, _ = _adaptive_engine(arrivals)
        fresh_director.initialize_all()
        fresh_scheduler.state_restore(dump)
        assert fresh_scheduler.hosted_kind == scheduler.hosted_kind
        assert fresh_scheduler.switches == scheduler.switches
        assert fresh_scheduler.quantum_us == scheduler.quantum_us
        assert type(fresh_scheduler.hosted) is type(scheduler.hosted)
        assert (
            fresh_scheduler.total_backlog() == scheduler.total_backlog()
        )

    def test_full_engine_checkpoint_roundtrip(self):
        arrivals = [(i * 500, i) for i in range(2_000)]

        def engine():
            return _adaptive_engine(arrivals, control_period_us=200_000)

        director, _, clock, sink = engine()
        runtime = SimulationRuntime(director, clock)
        runtime.run(0.4)
        payload = serialize_snapshot(capture_snapshot(director))
        runtime.run(3.0, drain=True)
        reference = [
            (event.timestamp, repr(event.value)) for _, event in sink.items
        ]

        fresh_director, _, fresh_clock, fresh_sink = engine()
        fresh_director.initialize_all()
        restore_snapshot(fresh_director, deserialize_snapshot(payload))
        SimulationRuntime(fresh_director, fresh_clock).run(3.0, drain=True)
        assert [
            (event.timestamp, repr(event.value))
            for _, event in fresh_sink.items
        ] == reference

    def test_fingerprint_policy_is_adapt(self):
        director, _, _, _ = _adaptive_engine([(0, 1)])
        assert structure_fingerprint(director)["policy"] == "ADAPT"

    def test_describe_names_hosted_policy(self):
        scheduler = AdaptiveScheduler()
        assert scheduler.describe().startswith("ADAPT[")


class TestQuantumOwnershipHandshake:
    """The overload controller must not fight the meta-policy."""

    def _install(self, scheduler):
        workflow, sink = _build_relay([(0, 1)], fuse=False)
        clock = VirtualClock()
        director = SCWFDirector(scheduler, clock, CostModel())
        director.attach(workflow)
        policy = QoSPolicy.parse("slo=5,adapt-quantum=1")
        return OverloadController(policy).install(director)

    def test_controller_leaves_adaptive_quantum_alone(self):
        scheduler = AdaptiveScheduler()
        controller = self._install(scheduler)
        assert controller._read_quantum() is None
        before = scheduler.hosted.basic_quantum_us
        controller._write_quantum(7)
        assert scheduler.hosted.basic_quantum_us == before
        assert controller.state_dump()["quantum_us"] is None

    def test_controller_still_tunes_plain_qbs(self):
        scheduler = QuantumPriorityScheduler(500)
        controller = self._install(scheduler)
        assert controller._read_quantum() == 500
        controller._write_quantum(250)
        assert scheduler.basic_quantum_us == 250

    def test_shedder_assignment_reaches_hosted_policy(self):
        scheduler = AdaptiveScheduler()
        controller = self._install(scheduler)
        assert scheduler.hosted.shedder is controller
        assert scheduler.hosted.admission_gate is controller


# ----------------------------------------------------------------------
# Harness integration
# ----------------------------------------------------------------------
class TestHarnessFusion:
    def test_pncwf_plus_fuse_rejected(self):
        from dataclasses import replace

        from repro.harness.configs import ExperimentConfig, SchedulerSpec
        from repro.harness.experiment import run_once

        config = ExperimentConfig(
            SchedulerSpec("PNCWF"), fuse=True
        ).scaled_duration(2)
        with pytest.raises(SimulationError):
            run_once(config, seed=1)

    def test_fuse_round_trips_through_manifest_meta(self):
        from repro.harness.configs import ExperimentConfig, SchedulerSpec
        from repro.harness.experiment import checkpoint_meta, config_from_meta

        config = ExperimentConfig(
            SchedulerSpec("ADAPT"), fuse=True
        )
        meta = checkpoint_meta(config, seed=3)
        assert meta["fuse"] is True
        assert meta["scheduler"]["kind"] == "ADAPT"
        rebuilt, seed = config_from_meta(meta)
        assert seed == 3
        assert rebuilt.fuse is True
        assert rebuilt.scheduler.kind == "ADAPT"
        # Pre-fusion manifests restore unfused.
        del meta["fuse"]
        legacy, _ = config_from_meta(meta)
        assert legacy.fuse is False
