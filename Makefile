# Convenience targets for the CONFLuEnCE/STAFiLOS reproduction.

PYTHON ?= python

.PHONY: install test lint ci bench bench-quick bench-paper bench-smoke bench-train bench-fusion bench-overload bench-shard bench-shard-transport bench-frontier bench-ablation checkpoint-smoke figures examples chaos clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:  # ruff when available; otherwise a byte-compile syntax pass.
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	elif $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "lint: ruff not installed; falling back to compileall"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi
	$(PYTHON) tools/check_imports.py  # duplicate/unsorted imports (ruff "I" stand-in)

ci: lint test checkpoint-smoke bench-train bench-fusion bench-overload bench-shard bench-shard-transport bench-frontier

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_BENCH_DURATION=120 $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:  # the paper's methodology: 600 s, three seeded runs averaged
	REPRO_BENCH_SEEDS=3 $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:  # engine micros vs. the committed baselines (2x gate)
	$(PYTHON) -m pytest benchmarks/bench_engine_micro.py \
		-k "dispatch_throughput or windowed_put" -q \
		--benchmark-json=.benchmark-smoke.json
	$(PYTHON) benchmarks/check_baseline.py .benchmark-smoke.json
	$(PYTHON) -m pytest benchmarks/bench_engine_micro.py -q \
		--benchmark-json=.benchmark-engine-micro.json
	$(PYTHON) benchmarks/check_baseline.py .benchmark-engine-micro.json \
		--baseline benchmarks/baselines/engine_micro.json

bench-train:  # event-train throughput: speedup gate + absolute baselines
	$(PYTHON) -m pytest benchmarks/bench_train_throughput.py -q \
		--benchmark-json=.benchmark-train.json
	$(PYTHON) benchmarks/check_baseline.py .benchmark-train.json \
		--baseline benchmarks/baselines/train.json

bench-fusion:  # fused-chain throughput: >=2x speedup gate + absolute baselines
	$(PYTHON) -m pytest benchmarks/bench_fusion.py -q \
		--benchmark-json=.benchmark-fusion.json
	$(PYTHON) benchmarks/check_baseline.py .benchmark-fusion.json \
		--baseline benchmarks/baselines/fusion.json

bench-overload:  # SLO gate: the QoS loop must hold bursty LR under 5 s p99
	$(PYTHON) -m pytest benchmarks/bench_overload_slo.py -q \
		--benchmark-json=.benchmark-overload.json
	$(PYTHON) benchmarks/check_baseline.py .benchmark-overload.json \
		--baseline benchmarks/baselines/overload.json

bench-shard:  # sharded execution: identity gate + absolute baselines
	$(PYTHON) -m pytest benchmarks/bench_shard_scaling.py -q \
		--benchmark-json=.benchmark-shard.json
	$(PYTHON) benchmarks/check_baseline.py .benchmark-shard.json \
		--baseline benchmarks/baselines/shard.json

bench-shard-transport:  # data plane: >=30% per-chunk gate + absolute baselines
	$(PYTHON) -m pytest benchmarks/bench_shard_transport.py -q \
		--benchmark-json=.benchmark-shard-transport.json
	$(PYTHON) benchmarks/check_baseline.py .benchmark-shard-transport.json \
		--baseline benchmarks/baselines/shard_transport.json

bench-frontier:  # frontier tracking: <=10% overhead + purity gate on in-order fig-8
	REPRO_BENCH_DURATION=120 $(PYTHON) -m pytest \
		benchmarks/bench_frontier_overhead.py --benchmark-only -q \
		--benchmark-json=.benchmark-frontier.json
	$(PYTHON) benchmarks/check_baseline.py .benchmark-frontier.json \
		--baseline benchmarks/baselines/frontier.json

bench-ablation:  # multicore SCWF ablation (slow; not part of ci)
	$(PYTHON) -m pytest benchmarks/bench_ablation_multicore.py -q \
		--benchmark-json=.benchmark-ablation.json
	$(PYTHON) benchmarks/check_baseline.py .benchmark-ablation.json \
		--baseline benchmarks/baselines/ablation_multicore.json

checkpoint-smoke:  # checkpoint tests + example + <10% overhead gate on fig-8
	$(PYTHON) -m pytest tests/test_checkpoint.py -q
	$(PYTHON) examples/checkpoint_resume.py
	REPRO_BENCH_DURATION=120 $(PYTHON) -m pytest \
		benchmarks/bench_checkpoint_overhead.py --benchmark-only -q \
		--benchmark-json=.benchmark-checkpoint.json
	$(PYTHON) benchmarks/check_baseline.py .benchmark-checkpoint.json \
		--baseline benchmarks/baselines/checkpoint.json

figures:
	$(PYTHON) -m repro table1
	$(PYTHON) -m repro fig5
	$(PYTHON) -m repro --seeds 1 fig8

examples:
	for script in examples/*.py; do $(PYTHON) $$script || exit 1; done

chaos:  # deterministic fault-injection suite (resilience + chaos runs)
	$(PYTHON) -m pytest tests/test_resilience.py tests/test_chaos.py tests/test_window_forced.py

clean:
	rm -rf .pytest_cache .benchmarks src/repro.egg-info .benchmark-smoke.json .benchmark-checkpoint.json .benchmark-engine-micro.json .benchmark-train.json .benchmark-fusion.json .benchmark-overload.json .benchmark-shard.json .benchmark-shard-transport.json .benchmark-frontier.json .benchmark-ablation.json
	find . -name __pycache__ -type d -exec rm -rf {} +
