"""Table 1 of the paper: the taxonomy of directors (models of computation).

The paper surveys the directors found in Kepler (first group) and PtolemyII
(second group) along five axes and positions its own PNCWF director in that
space.  The taxonomy here is data — :func:`render_table` regenerates the
paper's table, and the registry maps the entries we actually implement onto
their classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class DirectorTaxon:
    """One row of Table 1."""

    name: str
    group: str  # "Kepler", "PtolemyII" or "CONFLuEnCE"
    actor_interaction: str
    computation_driver: str
    scheduling: str
    time_based: str
    qos: str
    implemented_by: Optional[str] = None  # dotted path when we build it


TAXONOMY: tuple[DirectorTaxon, ...] = (
    DirectorTaxon(
        "SDF", "Kepler", "Director: Topology-driven", "Pre-compiled",
        "Pre-compiled", "N/A", "N/A",
        implemented_by="repro.directors.sdf.SDFDirector",
    ),
    DirectorTaxon(
        "DDF", "Kepler", "Push", "Data-driven",
        "Iterative/Consumption Based", "N/A", "N/A",
        implemented_by="repro.directors.ddf.DDFDirector",
    ),
    DirectorTaxon(
        "PN", "Kepler", "Push", "Data-driven", "Thread/OS", "N/A", "N/A",
        implemented_by="repro.directors.pn.PNDirector",
    ),
    DirectorTaxon(
        "DE", "Kepler", "Director: Event Queue", "Event-driven",
        "Event Order", "Yes (global)", "N/A",
        implemented_by="repro.directors.de.DEDirector",
    ),
    DirectorTaxon(
        "CN", "PtolemyII", "Director: Topology-driven Push/Pull",
        "Data-driven", "Thread/OS", "Yes (global)", "N/A",
    ),
    DirectorTaxon(
        "CI", "PtolemyII", "Push", "Data-driven", "Thread/OS", "N/A", "N/A",
    ),
    DirectorTaxon(
        "CSP", "PtolemyII", "Push Synchronous", "Pre-compiled",
        "Pre-compiled", "Yes (global)", "N/A",
    ),
    DirectorTaxon(
        "DT", "PtolemyII", "Director: Topology-driven", "Data-driven",
        "Multiple", "Yes (global or local)", "N/A",
    ),
    DirectorTaxon(
        "HDF", "PtolemyII", "Director: Topology-driven", "Data-driven",
        "Pre-compiled", "N/A", "N/A",
    ),
    DirectorTaxon(
        "SR", "PtolemyII", "Synchronous Reactive", "Pre-compiled",
        "Pre-compiled", "Yes (global tick)", "N/A",
    ),
    DirectorTaxon(
        "TM", "PtolemyII", "Director: Priority Queue", "Priority-based",
        "Pre-emptive Priority-based", "N/A", "Priority",
    ),
    DirectorTaxon(
        "TPN", "PtolemyII", "Push", "Data-Time-driven", "Thread/OS",
        "Yes (global)", "N/A",
    ),
    DirectorTaxon(
        "PNCWF", "CONFLuEnCE", "Push-Windowed", "Data-Windowed-driven",
        "Thread/OS", "Yes (local)", "N/A",
        implemented_by="repro.directors.pncwf.PNCWFDirector",
    ),
)

_COLUMNS = (
    ("Director", "name"),
    ("Actor Interaction", "actor_interaction"),
    ("Computation Driver", "computation_driver"),
    ("Scheduling", "scheduling"),
    ("Time based", "time_based"),
    ("QoS", "qos"),
)


def implemented_directors() -> dict[str, str]:
    """Name -> dotted class path, for every taxon we implement."""
    return {
        taxon.name: taxon.implemented_by
        for taxon in TAXONOMY
        if taxon.implemented_by is not None
    }


def render_table() -> str:
    """Regenerate Table 1 as aligned text, grouped as in the paper."""
    widths = [
        max(len(header), *(len(getattr(t, attr)) for t in TAXONOMY))
        for header, attr in _COLUMNS
    ]
    lines = []
    header = " | ".join(
        header.ljust(width) for (header, _), width in zip(_COLUMNS, widths)
    )
    rule = "-+-".join("-" * width for width in widths)
    lines.append(header)
    lines.append(rule)
    last_group = None
    for taxon in TAXONOMY:
        if last_group is not None and taxon.group != last_group:
            lines.append(rule)
        last_group = taxon.group
        lines.append(
            " | ".join(
                getattr(taxon, attr).ljust(width)
                for (_, attr), width in zip(_COLUMNS, widths)
            )
        )
    return "\n".join(lines)
