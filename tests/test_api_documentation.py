"""Documentation gate: every public item carries a docstring.

Walks the installed ``repro`` package: every module, every public class
and every public function/method defined in the package must have a
non-trivial docstring — the deliverable's "doc comments on every public
item" requirement, enforced.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
)
def test_module_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) > 20, module


def public_classes():
    seen = {}
    for module in ALL_MODULES:
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if not obj.__module__.startswith("repro"):
                continue
            seen[f"{obj.__module__}.{obj.__qualname__}"] = obj
    return seen


CLASSES = public_classes()


@pytest.mark.parametrize(
    "cls", list(CLASSES.values()), ids=list(CLASSES.keys())
)
def test_class_docstring(cls):
    assert cls.__doc__ and cls.__doc__.strip(), cls


def public_functions():
    seen = {}
    for module in ALL_MODULES:
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isfunction(obj):
                continue
            if not obj.__module__.startswith("repro"):
                continue
            seen[f"{obj.__module__}.{name}"] = obj
    return seen


FUNCTIONS = public_functions()


@pytest.mark.parametrize(
    "fn", list(FUNCTIONS.values()), ids=list(FUNCTIONS.keys())
)
def test_function_docstring(fn):
    assert fn.__doc__ and fn.__doc__.strip(), fn


# ----------------------------------------------------------------------
# The public facade (``from repro import ...``)
# ----------------------------------------------------------------------
FACADE_EXPORTS = [name for name in repro.__all__ if name != "__version__"]


def test_facade_all_is_complete():
    """Every name in ``__all__`` exists as an attribute on the package."""
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ names missing {name}"


@pytest.mark.parametrize("name", FACADE_EXPORTS)
def test_facade_export_documented(name):
    """Every facade export carries its own (or its target's) docstring."""
    obj = getattr(repro, name)
    assert obj.__doc__ and obj.__doc__.strip(), f"repro.{name}"


def test_facade_acceptance_imports():
    """The one-line import the redesign promises users."""
    from repro import (  # noqa: F401
        QBSScheduler,
        RecordingTracer,
        SCWFDirector,
        Workflow,
    )

    from repro.stafilos import QuantumPriorityScheduler

    assert QBSScheduler is QuantumPriorityScheduler


def test_deep_paths_remain_importable():
    """The old module paths survive the facade redesign as aliases."""
    import repro.core
    import repro.observability
    import repro.stafilos

    assert repro.core.Workflow is repro.Workflow
    assert repro.stafilos.SCWFDirector is repro.SCWFDirector
    assert (
        repro.observability.RecordingTracer is repro.RecordingTracer
    )


def test_resilience_facade_exports():
    """The fault-tolerance surface is reachable from the top facade."""
    import repro.resilience

    for name in (
        "DeadLetter",
        "DeadLetterQueue",
        "FaultInjector",
        "FaultPolicy",
        "FaultSupervisor",
        "install_faults",
        "parse_fault_spec",
    ):
        assert name in repro.__all__, f"repro.__all__ missing {name}"
        assert getattr(repro, name) is getattr(repro.resilience, name)
