"""Deterministic fault injection: reproducible chaos for continuous runs.

Recovery code that is never exercised is broken code.  This module wraps
workflow actors so their ``fire`` raises
:class:`~repro.core.exceptions.InjectedFault` on a *deterministic*
schedule — driven purely by per-actor seeded RNG streams and firing
counters, never by wall-clock time — so a chaos run under the virtual
clock is bit-identical across invocations and failures can be replayed
at will.

The CLI harness exposes this as ``--inject-faults SPEC``.  A spec is a
``;``-separated list of clauses, each ``pattern[:key=value[,key=value]]``
where *pattern* is an ``fnmatch`` glob over internal actor names::

    seg_stats:rate=0.05,seed=3        5% of seg_stats firings fail
    toll*:every=50                    every 50th firing of toll* actors
    car_filter:every=7,limit=3        only the first 3 multiples of 7

Clauses compose; an actor matched by several clauses fails when *any* of
them triggers.
"""

from __future__ import annotations

import fnmatch
import random
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.exceptions import InjectedFault, ResilienceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.actors import Actor
    from ..core.workflow import Workflow


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``--inject-faults`` clause."""

    #: ``fnmatch`` glob over actor names (``*`` matches every actor).
    pattern: str
    #: Probability that any given firing fails (seeded RNG stream).
    rate: float = 0.0
    #: Fail every Nth firing (1-based; ``None`` disables).
    every: Optional[int] = None
    #: Seed mixed with the actor name for the per-actor RNG stream.
    seed: int = 0
    #: Stop injecting after this many faults (``None`` = unbounded).
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ResilienceError("fault spec needs an actor pattern")
        if not 0.0 <= self.rate <= 1.0:
            raise ResilienceError(f"fault rate must be in [0,1], got {self.rate}")
        if self.every is not None and self.every <= 0:
            raise ResilienceError("fault 'every' must be a positive integer")
        if self.limit is not None and self.limit <= 0:
            raise ResilienceError("fault 'limit' must be a positive integer")
        if self.rate == 0.0 and self.every is None:
            raise ResilienceError(
                f"fault spec {self.pattern!r} never fires: give rate= or every="
            )

    def matches(self, actor_name: str) -> bool:
        """True when this clause applies to *actor_name*."""
        return fnmatch.fnmatchcase(actor_name, self.pattern)


def parse_fault_spec(text: str) -> list[FaultSpec]:
    """Parse a full ``--inject-faults`` string into :class:`FaultSpec` list.

    Raises :class:`~repro.core.exceptions.ResilienceError` on malformed
    clauses so the CLI can report the offending fragment verbatim.
    """
    specs: list[FaultSpec] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        pattern, _, tail = clause.partition(":")
        fields: dict[str, object] = {}
        if tail:
            for pair in tail.split(","):
                key, sep, value = pair.partition("=")
                key = key.strip()
                if not sep or key not in ("rate", "every", "seed", "limit"):
                    raise ResilienceError(
                        f"bad fault spec field {pair!r} in clause {clause!r}"
                    )
                try:
                    fields[key] = (
                        float(value) if key == "rate" else int(value)
                    )
                except ValueError:
                    raise ResilienceError(
                        f"bad fault spec value {value!r} for {key!r}"
                    ) from None
        specs.append(FaultSpec(pattern.strip(), **fields))  # type: ignore[arg-type]
    if not specs:
        raise ResilienceError(f"empty fault spec {text!r}")
    return specs


class FaultInjector:
    """Wraps one actor's ``fire`` with a deterministic failure schedule.

    The wrapper shadows the actor's bound ``fire`` with an instance
    attribute; :meth:`uninstall` restores the original.  Decisions are
    drawn from a :class:`random.Random` seeded with the spec seed mixed
    with a CRC of the actor name (stable across processes, unlike
    ``hash``), plus the firing counter — wall-clock time never enters.
    """

    def __init__(
        self,
        actor: "Actor",
        specs: list[FaultSpec],
        seed_salt: int = 0,
    ):
        if not specs:
            raise ResilienceError("FaultInjector needs at least one FaultSpec")
        self.actor = actor
        self.specs = list(specs)
        self.firings = 0
        self.injected = 0
        self._per_spec_injected = [0] * len(self.specs)
        self._rngs = [
            random.Random(
                (spec.seed << 32)
                ^ zlib.crc32(actor.name.encode("utf-8"))
                ^ seed_salt
            )
            for spec in self.specs
        ]
        self._original_fire = actor.fire
        self._installed = False

    # ------------------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Activate the wrapper (idempotent); returns self for chaining."""
        if not self._installed:
            injector = self

            def fire(ctx):
                """Injected-fault guard around the wrapped actor's fire."""
                injector.before_fire()
                return injector._original_fire(ctx)

            self.actor.fire = fire  # type: ignore[method-assign]
            self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the actor's original ``fire``."""
        if self._installed:
            del self.actor.fire  # removes the instance shadow
            self._installed = False

    # ------------------------------------------------------------------
    def before_fire(self) -> None:
        """Advance the schedule; raise on the firings chosen to fail.

        Every call counts one firing attempt — retries re-enter the
        schedule, so a retried firing may deterministically fail again.
        """
        self.firings += 1
        for index, spec in enumerate(self.specs):
            if (
                spec.limit is not None
                and self._per_spec_injected[index] >= spec.limit
            ):
                continue
            triggered = False
            if spec.every is not None and self.firings % spec.every == 0:
                triggered = True
            if spec.rate > 0.0 and self._rngs[index].random() < spec.rate:
                triggered = True
            if triggered:
                self._per_spec_injected[index] += 1
                self.injected += 1
                raise InjectedFault(
                    f"injected fault #{self.injected} in {self.actor.name} "
                    f"(firing {self.firings}, clause {spec.pattern!r})"
                )


def install_faults(
    workflow: "Workflow",
    spec: "str | list[FaultSpec]",
    seed_salt: int = 0,
) -> list[FaultInjector]:
    """Install injectors on every *internal* actor the spec matches.

    Sources are skipped — they pump external arrivals rather than fire on
    staged items, and the interesting fault surface is the processing
    pipeline.  Returns the installed injectors (empty list when nothing
    matched) so callers can report per-actor injection counts.

    ``seed_salt`` is XOR-mixed into every injector's RNG seed; sharded
    runs pass :func:`repro.shard.shard_salt` (a CRC32 of the shard
    name) so each logical shard draws its own — but worker-placement
    independent — failure schedule.  The default ``0`` leaves
    single-engine schedules byte-identical to earlier releases.
    """
    specs = parse_fault_spec(spec) if isinstance(spec, str) else list(spec)
    injectors: list[FaultInjector] = []
    for actor in workflow.actors.values():
        if actor.is_source:
            continue
        matched = [s for s in specs if s.matches(actor.name)]
        if matched:
            injectors.append(
                FaultInjector(actor, matched, seed_salt=seed_salt).install()
            )
    return injectors
