"""The Scheduled CWF (SCWF) director — the heart of STAFiLOS.

The SCWF director is the component that interacts with the workflow model:
it initializes the actors, ports, receivers and the scheduler, and
transitions the workflow through the execution stages of each iteration.
It is *schedule-independent*: the policy is any
:class:`~repro.stafilos.abstract_scheduler.AbstractScheduler`.

One director iteration follows the paper's Figure 3 exactly::

    prefire: signal scheduler (iteration start)
    fire:    loop {
                 actor = scheduler.getNextActor()
                 if actor is None: break
                 if source:   pump due arrivals
                 else:        dequeue ready item -> stage in TM receiver
                              prefire/fire/postfire actor, timing the cost
                 produced events flow through TM receivers back into the
                 scheduler's per-actor ready queues
             }
    postfire: signal scheduler (iteration end: requantify, roll period...)

Time is supplied by a pluggable clock (``now_us``/``advance``/``jump_to``)
and firing costs by a pluggable cost model — virtual implementations live
in :mod:`repro.simulation`.
"""

from __future__ import annotations

import heapq
from typing import Optional

from ..core.actors import Actor, SourceActor
from ..core.context import FiringContext
from ..core.director import Director
from ..core.events import CWEvent
from ..core.exceptions import DirectorError, ResilienceError
from ..core.ports import InputPort
from ..core.receivers import Receiver
from ..core.windows import Window
from ..observability import tracer as _obs
from ..resilience import FailureAction, FaultPolicy, FaultSupervisor
from .abstract_scheduler import AbstractScheduler
from .tm_receiver import TMWindowedReceiver

#: Sentinel returned by the train fire loop when the firing quantum ran out
#: before a fresh scheduling decision was drawn: the caller must consult
#: ``get_next_actor`` itself.  Distinct from ``None`` ("the scheduler was
#: consulted and ended the iteration") — a drawn decision is consumed
#: exactly once, which matters for policies with stateful selection (the
#: RR source rotation advances inside ``get_next_actor``).
_CONSULT = object()

#: Stand-in event-time bound for "the stream has fully drained": far
#: beyond any admissible timestamp, so every pending pane closes.
_FAR_FUTURE = 2**62


class SCWFDirector(Director):
    """Generic, pluggable scheduled continuous-workflow director."""

    model_name = "SCWF"

    def __init__(
        self,
        scheduler: AbstractScheduler,
        clock,
        cost_model,
        max_firings_per_iteration: int = 5_000_000,
        error_policy: "FaultPolicy | str" = FaultPolicy(propagate=True),
        train_size: Optional[int] = 1,
    ):
        super().__init__()
        try:
            policy = FaultPolicy.coerce(error_policy)
        except ResilienceError as error:
            raise DirectorError(str(error)) from None
        if train_size is not None and (
            not isinstance(train_size, int) or train_size < 1
        ):
            raise DirectorError(
                f"train_size must be a positive int or None, got {train_size!r}"
            )
        #: Event-train firing quantum: how many staged ready items one
        #: dispatch of a non-source actor may drain (``None`` = drain-all),
        #: and the chunk size emission trains are flushed in.  1 (the
        #: default) preserves the historical strictly-per-event path; every
        #: value is bit-identical to 1 by construction (see
        #: ``_fire_internal_train``), batching only the bookkeeping.
        self.train_size = train_size
        self.scheduler = scheduler
        self.clock = clock
        self.cost_model = cost_model
        #: Optional closed-loop overload controller (see
        #: ``repro.overload``); installed via :meth:`apply_qos`.  Caps
        #: source pumping, adjusts idle fast-forward for admission
        #: tokens, and is checkpointed as its own component.
        self.overload = None
        #: Optional :class:`repro.frontier.FrontierTracker`; installed
        #: via :meth:`enable_frontier` *before* ``attach`` so receiver
        #: creation can see the closure mode.  ``None`` keeps every hot
        #: path on the historical branch.
        self.frontier = None
        #: Lateness policy handed to timed receivers at creation.
        self.frontier_lateness = None
        self.max_firings_per_iteration = max_firings_per_iteration
        #: The recovery configuration.  ``error_policy`` accepts a full
        #: :class:`~repro.resilience.FaultPolicy` or the legacy string
        #: aliases: ``"raise"`` propagates actor exceptions (fail-stop);
        #: ``"drop"`` treats a failing firing as a fault barrier — the
        #: triggering item is consumed, partial emissions are discarded,
        #: the error counted and the item dead-lettered.
        self.fault_policy = policy
        #: Per-actor failure state + the dead-letter queue.
        self.supervisor = FaultSupervisor(policy, self.statistics)
        self.iterations = 0
        self.total_internal_firings = 0
        self.total_source_firings = 0
        self.total_events_admitted = 0
        self.actor_errors: dict[str, int] = {}
        self._timed_receivers: list[TMWindowedReceiver] = []
        # ---- timed-window deadline heap -----------------------------
        #: Receivers whose spec declares a formation timeout, by slot.
        self._deadline_watch: list[TMWindowedReceiver] = []
        #: Lazy min-heap of ``(deadline_us, slot)``; an entry is live iff
        #: it equals ``_deadline_cache[slot]``.
        self._deadline_heap: list[tuple[int, int]] = []
        self._deadline_cache: list[Optional[int]] = []
        #: Slots whose window operator changed since the last flush.
        self._deadline_dirty: set[int] = set()
        # ---- next-arrival cache -------------------------------------
        self._arrival_cache: Optional[int] = None
        self._arrival_cache_valid = False
        #: Live (unbounded) sources can grow their arrival schedule from
        #: a background thread; caching is only safe without them.
        self._sources_static = False

    @property
    def error_policy(self) -> str:
        """Legacy string view of :attr:`fault_policy` (back-compat)."""
        return self.fault_policy.alias

    @property
    def dead_letters(self):
        """The supervisor's dead-letter queue (convenience alias)."""
        return self.supervisor.dead_letters

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def create_receiver(self, port: InputPort) -> Receiver:
        receiver = TMWindowedReceiver(port.window, self, port)
        frontier_closes = (
            self.frontier is not None and self.frontier.mode == "close"
        )
        if port.window is not None and port.window.measure.value == "time":
            self._timed_receivers.append(receiver)
            if self.frontier_lateness is not None:
                receiver.lateness = self.frontier_lateness
            # Under frontier closure, timed panes close when the
            # event-time frontier passes them — the engine-time
            # formation-timeout watch would race it non-deterministically
            # across placements, so it is not registered.
            if port.window.timeout is not None and not frontier_closes:
                slot = len(self._deadline_watch)
                self._deadline_watch.append(receiver)
                self._deadline_cache.append(None)
                self._deadline_dirty.add(slot)
                receiver.watch_deadline(slot)
        return receiver

    def initialize_all(self) -> None:
        super().initialize_all()
        workflow = self._require_attached()
        self.scheduler.initialize(workflow, self.statistics)
        # Fused chains prebind the cost model and per-member statistics
        # records so per-hop attribution works from the first firing.
        for actor in workflow.actors.values():
            bind = getattr(actor, "bind_runtime", None)
            if bind is not None:
                bind(self)
        self._sources_static = all(
            not source.unbounded for source in workflow.sources
        )

    def current_time(self) -> int:
        return self.clock.now_us

    def make_context(self, actor: Actor, now: int) -> FiringContext:
        ctx = super().make_context(actor, now)
        if self.train_size != 1:
            ctx.enable_batch_emission(self.train_size, self.on_emit_batch)
        return ctx

    # ------------------------------------------------------------------
    # Scheduler intake (invoked by TM receivers)
    # ------------------------------------------------------------------
    def schedule_ready(
        self, actor: Actor, port_name: str, item: Window | CWEvent
    ) -> None:
        self.total_events_admitted += 1
        self.statistics.record_input(actor, 1, self.clock.now_us)
        self.scheduler.enqueue(actor, port_name, item)

    def schedule_ready_batch(
        self, actor: Actor, port_name: str, items: "list[Window | CWEvent]"
    ) -> None:
        """Train intake: admit a burst of ready items in one call.

        Same observable effect as ``schedule_ready`` per item — the
        admission counter and input statistics are count-based, and
        ``enqueue_batch`` is admission-order equivalent to an enqueue
        loop (falling back to one when a shedder must see every event).
        """
        count = len(items)
        if count == 0:
            return
        if count == 1:
            self.schedule_ready(actor, port_name, items[0])
            return
        self.total_events_admitted += count
        self.statistics.record_input(actor, count, self.clock.now_us)
        self.scheduler.enqueue_batch(actor, port_name, items)

    # ------------------------------------------------------------------
    # The director iteration cycle
    # ------------------------------------------------------------------
    def run_iteration(self) -> tuple[int, int]:
        """One full director iteration.

        Returns ``(internal_firings, source_emissions)`` so the runtime can
        detect lack of progress and fast-forward the clock.
        """
        workflow = self._require_attached()
        scheduler = self.scheduler
        self.iterations += 1
        iteration_start = self.clock.now_us
        if scheduler.shedder is not None:
            # Input-side shedding may advance source cursors.
            self._arrival_cache_valid = False
        scheduler.on_iteration_start(iteration_start)
        internal_firings = 0
        source_emissions = 0
        fired_total = 0
        budget = self.train_size
        next_actor = scheduler.get_next_actor()
        while next_actor is not None:
            actor = next_actor
            if _obs.ENABLED:
                _obs._TRACER.instant(
                    "sched.dispatch",
                    self.clock.now_us,
                    actor.name,
                    source=actor.is_source,
                )
            self.clock.advance(self.cost_model.dispatch_overhead_us)
            if actor.is_source:
                source_emissions += self._fire_source(actor)
                fired_total += 1
                next_actor = scheduler.get_next_actor()
            elif budget == 1:
                if self._fire_internal(actor):
                    internal_firings += 1
                fired_total += 1
                next_actor = scheduler.get_next_actor()
            else:
                # Event-train execution: keep draining this actor while
                # the scheduler keeps choosing it, up to ``budget`` items.
                fired, items, carried = self._fire_internal_train(
                    actor, budget
                )
                internal_firings += fired
                fired_total += items
                next_actor = (
                    scheduler.get_next_actor()
                    if carried is _CONSULT
                    else carried
                )
            if fired_total > self.max_firings_per_iteration:
                raise DirectorError(
                    "director iteration exceeded "
                    f"{self.max_firings_per_iteration} firings; "
                    "scheduler livelock?"
                )
        now = self.clock.now_us
        scheduler.on_iteration_end(now)
        if _obs.ENABLED and fired_total:
            _obs._TRACER.span(
                "director.iteration",
                iteration_start,
                now - iteration_start,
                internal=internal_firings,
                sources=source_emissions,
            )
            _obs._TRACER.counter("sched.backlog", now, scheduler.total_backlog())
        self.total_internal_firings += internal_firings
        self.total_source_firings += source_emissions
        return internal_firings, source_emissions

    def _fire_source(self, source: SourceActor) -> int:
        scheduler = self.scheduler
        now = self.clock.now_us
        allowance = None
        if self.overload is not None:
            allowance = self.overload.pump_allowance(source, now)
            if allowance == 0:
                # Paused by backpressure or token-starved: the dispatch
                # was drawn before the gate closed.  No-op, like an
                # empty-queue internal dispatch.  (``pump`` checks its
                # limit only *after* emitting, so a zero cap must skip
                # the pump call entirely.)
                scheduler.invalidate_state(source)
                scheduler.on_actor_fire_end(source, 0, now)
                return 0
        frontier = self.frontier
        if (
            frontier is not None
            and frontier.mode == "close"
            and not frontier.external
            and (scheduler.total_backlog() or self.consult_frontier())
        ):
            # Frontier-closure admission order: an in-order run reaches
            # a delivery's clock time only after every pane the frontier
            # passed has closed, fired and flushed — the engine settles,
            # then closes, then admits.  An out-of-order source's ripe
            # backlog would otherwise make it dispatchable mid-cascade,
            # letting an arrival overtake a closure's output.  Defer the
            # pump while internal work is pending or a closure round
            # just staged more; the rotation retries the source once the
            # cascade has settled and the bound is fully applied.
            scheduler.invalidate_state(source)
            scheduler.on_actor_fire_end(source, 0, now)
            return 0
        start = now
        scheduler.on_actor_fire_start(source, now)
        ctx = self.make_context(source, now)
        if not source.prefire(ctx):
            scheduler.on_actor_fire_end(source, 0, now)
            return 0
        if allowance is None:
            emitted = source.pump(ctx)
        else:
            # Cap the pump train at the admission allowance.
            saved_limit = source.batch_limit
            limit = (
                allowance
                if saved_limit is None
                else min(allowance, saved_limit)
            )
            source.batch_limit = limit
            try:
                emitted = source.pump(ctx)
            finally:
                source.batch_limit = saved_limit
            self.overload.note_pumped(source, emitted)
        source.postfire(ctx)
        ctx.close()
        # Once per pump train — not per emitted event: the cache only
        # depends on the source cursors, which move inside ``pump``.
        self.invalidate_arrival_cache()
        cost = self.cost_model.source_cost(source, emitted)
        now = self.clock.advance(cost)
        self.statistics.record_invocation(source, cost)
        scheduler.on_actor_fire_end(source, cost, now)
        if _obs.ENABLED:
            _obs._TRACER.span(
                "actor.fire", start, cost, source.name, emitted=emitted
            )
        return emitted

    def _fire_internal(self, actor: Actor) -> bool:
        scheduler = self.scheduler
        ready = scheduler.dequeue_item(actor)
        if ready is None:
            # The policy considered the actor runnable, but its queue is
            # empty (e.g. state staleness); treat as a no-op dispatch.
            scheduler.invalidate_state(actor)
            return False
        supervisor = self.supervisor
        if supervisor.is_quarantined(actor.name):
            # Open circuit: the item bypasses execution entirely.
            now = self.clock.now_us
            scheduler.on_actor_fire_start(actor, now)
            supervisor.drop_quarantined(
                actor, ready.port_name, ready.item, now
            )
            self.actor_errors[actor.name] = (
                self.actor_errors.get(actor.name, 0) + 1
            )
            if self.frontier is not None:
                self.frontier.retire_item(ready.item)
            scheduler.on_actor_fire_end(actor, 0, now)
            return False
        now = self.clock.now_us
        start = now
        scheduler.on_actor_fire_start(actor, now)
        port = actor.input(ready.port_name)
        receiver = port.receiver
        assert isinstance(receiver, TMWindowedReceiver)
        fused_flush = getattr(actor, "flush_fused_charges", None)
        fired = False
        attempt = 0
        while True:
            receiver.stage(ready.item)
            ctx = self.make_context(actor, self.clock.now_us)
            ctx.stage(ready.port_name, receiver.get())
            try:
                if actor.prefire(ctx):
                    actor.fire(ctx)
                    actor.postfire(ctx)
                    fired = True
                ctx.close()
                # Only a completed attempt records a full invocation.
                if fused_flush is not None:
                    # Fused chains accrue per-member charges internally;
                    # advance by the sum, then let the chain attribute
                    # costs/tokens per member and emit its finals.
                    self.clock.advance(actor.take_pending_cost())
                    fused_flush(self.clock.now_us)
                else:
                    cost = self.cost_model.invocation_cost(actor, ctx)
                    self.clock.advance(cost)
                    self.statistics.record_invocation(actor, cost)
                supervisor.on_success(actor)
                break
            except Exception as error:
                # Fault barrier: discard the failed firing's partial
                # emissions, charge the (cheaper) failure cost, and let
                # the supervisor decide: retry, dead-letter or propagate.
                ctx.abort()
                ctx.close()
                if fused_flush is not None:
                    actor.discard_fused_charges()
                attempt += 1
                decision = supervisor.on_failure(
                    actor,
                    ready.port_name,
                    ready.item,
                    error,
                    attempt,
                    self.clock.now_us,
                )
                if decision.action is FailureAction.PROPAGATE:
                    raise
                self.clock.advance(
                    self.cost_model.failure_cost(actor, ctx)
                )
                if _obs.ENABLED:
                    _obs._TRACER.instant(
                        "actor.error",
                        self.clock.now_us,
                        actor.name,
                        error=type(error).__name__,
                        attempt=attempt,
                    )
                if decision.action is FailureAction.RETRY:
                    # Exponential backoff charged in engine time.
                    self.clock.advance(decision.backoff_us)
                    continue
                # Dead-lettered by the supervisor.
                self.actor_errors[actor.name] = (
                    self.actor_errors.get(actor.name, 0) + 1
                )
                fired = False
                break
        if self.frontier is not None:
            # The item's token retires only after its firing settled —
            # emissions flushed at ctx.close() re-upped the root first,
            # so a live wave's count never transiently reaches zero.
            self.frontier.retire_item(ready.item)
        now = self.clock.now_us
        elapsed = now - start
        scheduler.on_actor_fire_end(actor, elapsed, now)
        if _obs.ENABLED:
            _obs._TRACER.span(
                "actor.fire",
                start,
                elapsed,
                actor.name,
                fired=fired,
                port=ready.port_name,
                attempts=attempt + 1 if fired or attempt else 1,
            )
        return fired

    def _fire_internal_train(self, actor: Actor, budget: Optional[int]):
        """Drain up to *budget* ready items of *actor* in one dispatch.

        Bit-identical to ``budget`` repetitions of the classic dispatch
        loop (``get_next_actor`` → dispatch overhead → ``_fire_internal``)
        for as long as the scheduler would keep choosing *actor*:

        * the scheduler is consulted **between every item** — quantum
          exhaustion, a window landing on a higher-priority actor, or a
          due source all cut the train exactly where the per-event loop
          would have switched;
        * every item is dequeued, charged (dispatch overhead, invocation
          or failure cost), recorded and flushed individually, in the
          same order — only the Python-level bookkeeping (context
          allocation, receiver staging round-trip, method dispatch) is
          amortized, plus the tracer fires once per train carrying exact
          per-event counts;
        * a drawn-but-unusable scheduling decision is *carried* back to
          the caller so it is consumed exactly once (policies like RR
          advance rotation state inside ``get_next_actor``).

        Returns ``(completed_firings, items_dispatched, carried)`` where
        ``carried`` is the next actor decision, ``None`` (iteration
        over), or :data:`_CONSULT` (budget exhausted with no decision
        drawn).  Trains never outlive the call: there is no in-flight
        train state for checkpoints to capture — ``checkpoint_barrier``
        runs between director iterations, where every train has fully
        drained.
        """
        scheduler = self.scheduler
        supervisor = self.supervisor
        cost_model = self.cost_model
        clock = self.clock
        # Prebound hot-path methods (one dict lookup each per train
        # instead of two attribute walks per item).
        dequeue_item = scheduler.dequeue_item
        get_next_actor = scheduler.get_next_actor
        continue_train = scheduler.continue_train
        fire_start = scheduler.on_actor_fire_start
        fire_end = scheduler.on_actor_fire_end
        advance = clock.advance
        invocation_cost = cost_model.invocation_cost
        # Per-actor stats resolved once: the registry-level
        # ``record_invocation`` is a pure delegation to this bound method.
        record_invocation = self.statistics.register(actor).record_invocation
        # With tracing off, ``dequeue_item`` reduces to a queue pop plus a
        # state invalidation that the per-item ``fire_end`` hook (or the
        # explicit empty-dequeue branch below) performs anyway — pop the
        # queue directly.  With tracing on, keep the full call so the
        # ``sched.queue_depth`` counter fires per dequeue.
        queue_pop = scheduler.ready[actor.name].pop
        obs_on = _obs.ENABLED
        is_quarantined = supervisor.is_quarantined
        on_success = supervisor.on_success
        dispatch_overhead = cost_model.dispatch_overhead_us
        actor_prefire = actor.prefire
        actor_fire = actor.fire
        actor_postfire = actor.postfire
        # Stateless fast path: ``fire_batch`` may replace the
        # prefire/fire/postfire triple only when the actor kept the
        # trivial base-class lifecycle (both default to "always ready").
        fire_batch = getattr(actor, "fire_batch", None)
        if fire_batch is not None and (
            type(actor).prefire is not Actor.prefire
            or type(actor).postfire is not Actor.postfire
        ):
            fire_batch = None
        # Fused chains settle their own per-member charges; the generic
        # cost paths below must not double-charge them.
        fused_flush = getattr(actor, "flush_fused_charges", None)
        # Deterministic cost fast path: when the model's charge is pure
        # integer arithmetic (no jitter, unit scale), inline it and skip
        # two method calls per item.  ``fast_invocation_base`` is duck
        # typed so custom cost models silently keep the full path.
        fast_base_fn = getattr(cost_model, "fast_invocation_base", None)
        fast_base = (
            None
            if fast_base_fn is None or fused_flush is not None
            else fast_base_fn(actor)
        )
        if fast_base is not None:
            per_input_us = cost_model.per_input_us
            per_output_us = cost_model.per_output_us
        frontier = self.frontier
        train_start = clock.now_us
        max_items = self.max_firings_per_iteration
        fired = 0
        items = 0
        ctx: Optional[FiringContext] = None
        while True:
            ready = dequeue_item(actor) if obs_on else queue_pop()
            items += 1
            if ready is None:
                # Runnable per a stale state but the queue is empty:
                # no-op dispatch, exactly as ``_fire_internal``.
                scheduler.invalidate_state(actor)
            elif is_quarantined(actor.name):
                now = clock.now_us
                fire_start(actor, now)
                supervisor.drop_quarantined(
                    actor, ready.port_name, ready.item, now
                )
                self.actor_errors[actor.name] = (
                    self.actor_errors.get(actor.name, 0) + 1
                )
                if frontier is not None:
                    frontier.retire_item(ready.item)
                fire_end(actor, 0, now)
            else:
                now = clock.now_us
                fire_start(actor, now)
                if ctx is None:
                    ctx = self.make_context(actor, now)
                else:
                    ctx.reset(now)
                ctx.stage(ready.port_name, ready.item)
                fired_this = False
                attempt = 0
                while True:
                    try:
                        if fire_batch is not None:
                            fire_batch(ctx)
                            fired_this = True
                        elif actor_prefire(ctx):
                            actor_fire(ctx)
                            actor_postfire(ctx)
                            fired_this = True
                        ctx.close()
                        if fused_flush is not None:
                            advance(actor.take_pending_cost())
                            fused_flush(clock.now_us)
                        else:
                            if fast_base is not None:
                                cost = (
                                    fast_base
                                    + per_input_us * ctx.inputs_consumed
                                    + per_output_us * ctx.outputs_produced
                                )
                                if cost < 1:
                                    cost = 1
                            else:
                                cost = invocation_cost(actor, ctx)
                            advance(cost)
                            record_invocation(cost)
                        on_success(actor)
                        break
                    except Exception as error:
                        ctx.abort()
                        ctx.close()
                        if fused_flush is not None:
                            actor.discard_fused_charges()
                        attempt += 1
                        decision = supervisor.on_failure(
                            actor,
                            ready.port_name,
                            ready.item,
                            error,
                            attempt,
                            clock.now_us,
                        )
                        if decision.action is FailureAction.PROPAGATE:
                            raise
                        advance(cost_model.failure_cost(actor, ctx))
                        if _obs.ENABLED:
                            _obs._TRACER.instant(
                                "actor.error",
                                clock.now_us,
                                actor.name,
                                error=type(error).__name__,
                                attempt=attempt,
                            )
                        if decision.action is FailureAction.RETRY:
                            advance(decision.backoff_us)
                            ctx.reset(clock.now_us)
                            ctx.stage(ready.port_name, ready.item)
                            continue
                        self.actor_errors[actor.name] = (
                            self.actor_errors.get(actor.name, 0) + 1
                        )
                        fired_this = False
                        break
                if frontier is not None:
                    frontier.retire_item(ready.item)
                end_now = clock.now_us
                fire_end(actor, end_now - now, end_now)
                if fired_this:
                    fired += 1
            if items > max_items:
                raise DirectorError(
                    "director iteration exceeded "
                    f"{max_items} firings; scheduler livelock?"
                )
            if budget is not None and items >= budget:
                carried = _CONSULT
                break
            if not continue_train(actor):
                chosen = get_next_actor()
                if chosen is not actor:
                    carried = chosen
                    break
            # The train continues: charge the dispatch the per-event loop
            # would have paid for re-selecting the same actor.
            if _obs.ENABLED:
                _obs._TRACER.instant(
                    "sched.dispatch", clock.now_us, actor.name, source=False
                )
            advance(dispatch_overhead)
        if _obs.ENABLED:
            now = clock.now_us
            _obs._TRACER.span(
                "actor.fire_train",
                train_start,
                now - train_start,
                actor.name,
                items=items,
                fired=fired,
            )
        return fired, items, carried

    # ------------------------------------------------------------------
    # Window timeout events
    # ------------------------------------------------------------------
    def _mark_deadline_dirty(self, slot: int) -> None:
        """A timed receiver's window operator changed; its deadline is
        stale.  O(1) — recomputation is deferred to the next flush."""
        self._deadline_dirty.add(slot)

    def _flush_deadlines(self) -> None:
        """Recompute the deadline of every dirty receiver (O(dirty·G))
        and repair the lazy heap (O(dirty·log R))."""
        dirty = self._deadline_dirty
        if not dirty:
            return
        heap = self._deadline_heap
        cache = self._deadline_cache
        for slot in dirty:
            receiver = self._deadline_watch[slot]
            boundary = receiver.next_deadline()
            deadline = (
                None if boundary is None else boundary + receiver.spec.timeout
            )
            cache[slot] = deadline
            if deadline is not None:
                heapq.heappush(heap, (deadline, slot))
        dirty.clear()

    def _peek_deadline(self) -> Optional[tuple[int, int]]:
        """The earliest live ``(deadline, slot)``, discarding stale tops."""
        heap = self._deadline_heap
        cache = self._deadline_cache
        while heap:
            deadline, slot = heap[0]
            if cache[slot] == deadline:
                return heap[0]
            heapq.heappop(heap)
        return None

    def next_window_deadline(self) -> Optional[int]:
        """Earliest engine time a timed-window timeout must fire.

        A receiver participates only when its spec declares a
        ``window_formation_timeout``; the timeout fires that long after the
        window's event-time right boundary.  Served from a lazily repaired
        min-heap: O(dirty·log R) amortized instead of an O(R) rescan.
        """
        self._flush_deadlines()
        top = self._peek_deadline()
        return top[0] if top is not None else None

    def fire_window_timeouts(self, now: int) -> int:
        """Force-produce every timed window whose timeout passed by *now*.

        Only *due* receivers are popped from the deadline heap
        (O(due·log R)); the historical full rescan of ``_timed_receivers``
        is gone.  Due receivers fire in registration order, matching the
        rescan's firing order exactly.
        """
        self._flush_deadlines()
        due: list[int] = []
        while True:
            top = self._peek_deadline()
            if top is None or top[0] > now:
                break
            _, slot = heapq.heappop(self._deadline_heap)
            self._deadline_cache[slot] = None
            due.append(slot)
        produced = 0
        for slot in sorted(due):
            receiver = self._deadline_watch[slot]
            produced += receiver.force_timeout(now - receiver.spec.timeout)
            # force_timeout marks the slot dirty via the receiver hook;
            # ensure it is re-examined even when nothing was produced.
            self._deadline_dirty.add(slot)
        if produced:
            if _obs.ENABLED:
                _obs._TRACER.instant("window.timeout_fired", now, produced=produced)
        return produced

    # ------------------------------------------------------------------
    # Frontier progress (repro.frontier)
    # ------------------------------------------------------------------
    def enable_frontier(self, tracker, lateness=None) -> None:
        """Install a frontier tracker (call *before* ``attach``).

        Receiver creation consults the tracker's mode — ``"close"``
        replaces the engine-time formation-timeout watch with
        event-time frontier closure — so enabling after attachment
        would leave the deadline heap armed.
        """
        if self._attached:
            raise DirectorError(
                "enable_frontier must be called before attach()"
            )
        self.frontier = tracker
        self.frontier_lateness = lateness
        tracker.bind_counters(self.statistics.engine_counters)

    def close_frontier_windows(self, up_to_us: int) -> int:
        """Apply an event-time frontier to every timed receiver.

        Closure is *graduated*: each call closes only the earliest
        pending pane boundary at or before *up_to_us*, then returns so
        the scheduler can fire the staged windows and flush their
        emissions before any later boundary closes.  A windowed actor
        feeding another windowed actor (AvgSv → AvgS in Linear Road)
        needs this — closing both panes in one sweep would deliver the
        upstream firing's output *after* the downstream pane it belongs
        to has already closed, silently dropping it as a straggler.
        Barren boundaries (a pane whose range holds no queued events)
        stage nothing, so the loop continues through them in place.
        """
        produced = 0
        while True:
            boundary = None
            for receiver in self._timed_receivers:
                b = receiver.next_frontier_boundary(up_to_us)
                if b is not None and (boundary is None or b < boundary):
                    boundary = b
            if boundary is None:
                if self.frontier is not None and produced == 0:
                    # Nothing left to close below the bound: record the
                    # full bound so idle consults stop rescanning until
                    # the frontier moves again.
                    self.frontier.note_applied(up_to_us)
                break
            for receiver in self._timed_receivers:
                produced += receiver.close_on_frontier(boundary)
            if self.frontier is not None:
                self.frontier.note_applied(boundary)
            if produced:
                break
        return produced

    def frontier_bound(self) -> Optional[int]:
        """The event-time bound no in-flight or future event precedes.

        The minimum of every source's progress watermark and the
        tracker's outstanding-token frontier; ``None`` when the system
        has fully drained (no bound — every pane is complete).
        """
        workflow = self._require_attached()
        bounds = []
        for source in workflow.sources:
            mark = source.progress_watermark()
            if mark is not None:
                bounds.append(mark)
        frontier_ts = self.frontier.frontier_ts()
        if frontier_ts is not None:
            bounds.append(frontier_ts)
        return min(bounds) if bounds else None

    def consult_frontier(self) -> int:
        """Idle-loop hook: publish progress, close passed panes.

        Returns the number of windows the frontier produced, so the
        runtime treats a closure like any other productive work instead
        of fast-forwarding past it.  Externally driven trackers (shard
        workers applying the coordinator's merged minimum) never
        self-close.
        """
        tracker = self.frontier
        if tracker is None:
            return 0
        now = self.clock.now_us
        tracker.publish(now)
        if tracker.mode != "close" or tracker.external:
            return 0
        bound = self.frontier_bound()
        if bound is None:
            # Fully drained: every remaining pane is complete.
            bound = _FAR_FUTURE
        if bound <= tracker.applied_us:
            return 0
        produced = self.close_frontier_windows(bound)
        if _obs.ENABLED and produced:
            _obs._TRACER.instant(
                "frontier.closed_windows", now,
                bound=bound, produced=produced,
            )
        return produced

    # ------------------------------------------------------------------
    # Idle bookkeeping for the runtime
    # ------------------------------------------------------------------
    def invalidate_arrival_cache(self) -> None:
        """Forget the cached earliest arrival (source cursors moved)."""
        self._arrival_cache_valid = False

    def next_arrival_time(self) -> Optional[int]:
        """Earliest undelivered external arrival across all sources.

        Cached between source firings when every source is static (live
        push sources can grow their schedule asynchronously, so caching
        is disabled the moment one is attached).  An exhausted schedule
        (``None``) is never cached: a late ``load()`` must be seen.
        """
        if self._arrival_cache_valid:
            return self._arrival_cache
        workflow = self._require_attached()
        overload = self.overload
        if overload is not None:
            # Admission tokens can defer an arrival past its schedule
            # time; jumping to the raw arrival would leave the source
            # gated and crawl the clock 1 µs at a time.  Ask the
            # controller for the earliest *admissible* instant per
            # source.  Never cached: token state moves with the clock.
            times = [
                overload.earliest_admission(source, arrival)
                for source in workflow.sources
                if (arrival := source.next_arrival_time()) is not None
            ]
            return min(times, default=None)
        times = [
            arrival
            for source in workflow.sources
            if (arrival := source.next_arrival_time()) is not None
        ]
        value = min(times, default=None)
        if self._sources_static and value is not None:
            self._arrival_cache = value
            self._arrival_cache_valid = True
        return value

    def backlog(self) -> int:
        return self.scheduler.total_backlog()

    # ------------------------------------------------------------------
    # QoS
    # ------------------------------------------------------------------
    def apply_qos(self, policy):
        """Install an overload controller enforcing *policy*.

        Convenience for the common wiring::

            director.apply_qos(QoSPolicy(latency_slo_s=5.0, ...))

        Builds a :class:`repro.overload.OverloadController` from the
        :class:`repro.overload.QoSPolicy` and installs it at the
        scheduler's shedding hook points.  Returns the controller (e.g.
        to attach a latency probe).
        """
        from ..overload import OverloadController

        return OverloadController(policy).install(self)

    def run_to_quiescence(self, now: int) -> int:
        """Composite-boundary entry point: iterate until no progress."""
        self.clock.jump_to(now)
        total = 0
        while True:
            internal, emitted = self.run_iteration()
            total += internal
            if internal == 0 and emitted == 0:
                return total

    # ------------------------------------------------------------------
    # Checkpointable protocol (director-local state only)
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        """Snapshot the director's own counters (Checkpointable).

        Scheduler, receivers, supervisor, statistics, clock and cost
        model are separate checkpoint components — the orchestrator in
        :mod:`repro.checkpoint.snapshot` walks them individually.  The
        timed-deadline heap and the next-arrival cache are *derived*
        state and are rebuilt lazily on restore instead of serialized.
        """
        return {
            "iterations": self.iterations,
            "total_internal_firings": self.total_internal_firings,
            "total_source_firings": self.total_source_firings,
            "total_events_admitted": self.total_events_admitted,
            "actor_errors": dict(self.actor_errors),
        }

    def state_restore(self, state: dict) -> None:
        """Re-apply director counters and invalidate the derived caches.

        Marking every deadline slot dirty and dropping the arrival cache
        forces the next ``next_window_deadline`` / ``next_arrival_time``
        call to recompute from the (already restored) receivers and
        source cursors — the lazy repair machinery then behaves exactly
        as in an uninterrupted run.
        """
        self.iterations = int(state["iterations"])
        self.total_internal_firings = int(state["total_internal_firings"])
        self.total_source_firings = int(state["total_source_firings"])
        self.total_events_admitted = int(state["total_events_admitted"])
        self.actor_errors = dict(state["actor_errors"])
        self._deadline_heap.clear()
        self._deadline_cache = [None] * len(self._deadline_watch)
        self._deadline_dirty = set(range(len(self._deadline_watch)))
        self._arrival_cache = None
        self._arrival_cache_valid = False
