"""Shared benchmark configuration.

Environment knobs (all optional):

``REPRO_BENCH_DURATION``
    Virtual seconds of the Linear Road experiment (default 600, the
    paper's duration).  Lower it for a faster smoke pass.
``REPRO_BENCH_SEEDS``
    Number of seeds averaged per configuration (default 1; the paper
    averages 3 — set 3 to reproduce the methodology exactly).
"""

from __future__ import annotations

import os

import pytest

from repro.harness import ExperimentConfig


def bench_duration_s() -> int:
    return int(os.environ.get("REPRO_BENCH_DURATION", "600"))


def bench_seeds() -> tuple[int, ...]:
    count = int(os.environ.get("REPRO_BENCH_SEEDS", "1"))
    return tuple(range(1, count + 1))


def tune(config: ExperimentConfig) -> ExperimentConfig:
    """Apply the environment's duration/seed overrides to a config."""
    return config.scaled_duration(bench_duration_s()).with_seeds(
        bench_seeds()
    )


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once (experiments are long)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
