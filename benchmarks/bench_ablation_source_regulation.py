"""Ablation: source-interval regulation (paper §4.2/§4.3 discussion).

The paper attributes RB's weaker response times to its lack of source
regulation: "tokens suffer from waiting for a longer period of time to
enter the workflow".  This ablation runs QBS with the paper's source
interval against a QBS variant whose regulation is effectively disabled
(a huge interval, so sources are only served when nothing else is active)
and shows regulation's benefit on pre-thrash response times.
"""

from conftest import bench_seeds, tune
from repro.harness import ExperimentConfig, run_experiment, SchedulerSpec
from repro.linearroad.generator import WorkloadConfig

# Near saturation: with slack capacity, regulation is a no-op (sources get
# served whenever queues drain); its value shows when internal work is
# continuously available and unregulated sources would wait behind it.
ABLATION_WORKLOAD = WorkloadConfig(duration_s=300, peak_rate=170)


def run_pair():
    regulated = ExperimentConfig(
        SchedulerSpec("QBS", quantum_us=500, source_interval=5),
        workload=ABLATION_WORKLOAD,
        seeds=bench_seeds(),
    )
    unregulated = ExperimentConfig(
        SchedulerSpec("QBS", quantum_us=500, source_interval=10_000_000),
        workload=ABLATION_WORKLOAD,
        seeds=bench_seeds(),
    )
    return run_experiment(regulated), run_experiment(unregulated)


def test_ablation_source_regulation(once):
    regulated, unregulated = once(run_pair)
    print()
    print("Ablation: QBS source-interval regulation")
    print(
        f"  regulated (interval=5):   mean={regulated.mean_pre_thrash_s():.3f}s"
        f" thrash={regulated.thrash_time_s}"
    )
    print(
        f"  unregulated (interval=~inf): mean="
        f"{unregulated.mean_pre_thrash_s():.3f}s"
        f" thrash={unregulated.thrash_time_s}"
    )
    # Both process the same stream; regulation should not hurt, and the
    # unregulated variant must not beat it meaningfully.
    assert regulated.mean_pre_thrash_s() <= (
        unregulated.mean_pre_thrash_s() * 1.10
    )
