"""The Round-Robin Scheduler (RR).

The traditional fair policy: at each scheduling period every active actor
receives the same time slice (quantum) and actors are served in round-robin
order.  An actor that drains its ready events goes INACTIVE and gives up
its remaining slice; an actor that exhausts its slice WAITs until the next
period.  New events arriving mid-period are processed if the actor still
has slice; an INACTIVE actor that receives events is (re)assigned a slice
and placed at the *end* of the round-robin queue.  The period rolls over
when the active queue empties (the director's end of iteration).

Sources are regulated exactly as in QBS: one source firing every
``source_interval`` internal invocations, at most once per iteration.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ...core.actors import Actor, SourceActor
from ...core.events import CWEvent
from ...core.windows import Window
from ...observability import tracer as _obs
from ..abstract_scheduler import AbstractScheduler
from ..ready import ReadyQueue
from ..states import ActorState


class RoundRobinScheduler(AbstractScheduler):
    """Equal slices, rotation order, no priorities."""

    policy_name = "RR"

    #: Sources are interval-regulated through their own rotation; only
    #: internal actors enter the ready-ring.  The LazyHeapIndex keyed by
    #: the rotation ticket *is* the rotating ready-ring: actors enter at
    #: the back (a fresh, higher ticket) and the earliest ticket is
    #: served first.
    index_includes_sources = False

    #: Mutable policy state for checkpointing; the rotation *counter* is
    #: handled separately in :meth:`policy_state_dump` (itertools.count
    #: does not expose assignment).
    checkpoint_attrs = (
        "quantum",
        "periods",
        "_order",
        "_fired_sources",
        "_internal_since_source",
        "_source_rotation",
    )

    def __init__(self, slice_us: int = 10_000, source_interval: int = 5):
        super().__init__()
        self.slice_us = slice_us
        self.source_interval = source_interval
        self.quantum: dict[str, int] = {}
        self.periods = 0
        self._rotation = itertools.count()
        self._order: dict[str, int] = {}
        self._fired_sources: set[str] = set()
        self._internal_since_source = 0
        self._source_rotation = 0

    # ------------------------------------------------------------------
    def on_initialize(self) -> None:
        for actor in self.actors:
            self.quantum[actor.name] = self.slice_us
            self._order[actor.name] = next(self._rotation)

    # ------------------------------------------------------------------
    # Table 2: the QBS column applies to RR as well
    # ------------------------------------------------------------------
    def evaluate_state(self, actor: Actor) -> ActorState:
        quantum = self.quantum.get(actor.name, 0)
        if actor.is_source:
            if actor.name in self._fired_sources or quantum <= 0:
                return ActorState.WAITING
            return ActorState.ACTIVE
        if not self.ready[actor.name]:
            return ActorState.INACTIVE
        if quantum > 0:
            return ActorState.ACTIVE
        return ActorState.WAITING

    def comparator_key(self, actor: Actor) -> Any:
        return self._order.get(actor.name, 0)

    # ------------------------------------------------------------------
    def admit(
        self,
        actor: Actor,
        queue: ReadyQueue,
        port_name: str,
        item: Window | CWEvent,
    ) -> None:
        """INACTIVE actors re-enter at the back of the round-robin queue."""
        was_empty = not queue
        queue.push(port_name, item)
        if was_empty and not actor.is_source:
            self._order[actor.name] = next(self._rotation)
            if self.quantum.get(actor.name, 0) <= 0:
                self.quantum[actor.name] = self.slice_us

    # ------------------------------------------------------------------
    def get_next_actor(self) -> Optional[Actor]:
        internal = self._peek_indexed()
        source_due = (
            self._internal_since_source >= self.source_interval
            or internal is None
        )
        if source_due:
            source = self._next_runnable_source()
            if source is not None:
                return source
        return internal

    def _next_runnable_source(self) -> Optional[SourceActor]:
        count = len(self.sources)
        for offset in range(count):
            source = self.sources[(self._source_rotation + offset) % count]
            if (
                self.state_of(source) is ActorState.ACTIVE
                and self.source_has_work(source, self._now)
            ):
                self._source_rotation = (
                    self._source_rotation + offset + 1
                ) % count
                return source
        return None

    # ------------------------------------------------------------------
    def on_actor_fire_end(self, actor: Actor, cost_us: int, now: int) -> None:
        super().on_actor_fire_end(actor, cost_us, now)
        self.quantum[actor.name] = self.quantum.get(actor.name, 0) - cost_us
        if actor.is_source:
            self._fired_sources.add(actor.name)
            self._internal_since_source = 0
        else:
            self._internal_since_source += 1

    def on_iteration_end(self, now: int) -> None:
        """Period roll-over: fresh equal slices for everyone."""
        super().on_iteration_end(now)
        self.periods += 1
        if _obs.ENABLED:
            _obs._TRACER.instant("sched.period_roll", now, period=self.periods)
        for actor in self.actors:
            self.quantum[actor.name] = self.slice_us
            self.invalidate_state(actor)
        self._fired_sources.clear()
        self._internal_since_source = 0

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def policy_state_dump(self) -> dict:
        """Add the next rotation ticket to the attribute-based dump."""
        state = super().policy_state_dump()
        state["next_ticket"] = self._rotation.__reduce__()[1][0]
        return state

    def policy_state_restore(self, state: dict) -> None:
        """Re-seed the ticket counter alongside the plain attributes."""
        super().policy_state_restore(state)
        self._rotation = itertools.count(int(state["next_ticket"]))

    def describe(self) -> str:
        return f"RR(slice={self.slice_us}us, src_int={self.source_interval})"
