"""Experiment harness: Table 3 configurations, runners, and renderers.

Each evaluation artifact of the paper maps to one bench module under
``benchmarks/``; the logic those benches share lives here.
"""

from .configs import (
    default_cost_model,
    DEFAULT_SEEDS,
    EXPERIMENT_DURATION_S,
    ExperimentConfig,
    figure6_configs,
    figure7_configs,
    figure8_configs,
    QBS_BASIC_QUANTA_US,
    QBS_SOURCE_INTERVAL,
    RR_BASIC_QUANTA_US,
    SchedulerSpec,
)
from .experiment import (
    checkpoint_meta,
    config_from_meta,
    ExperimentResult,
    make_scheduler,
    restore_engine,
    result_to_dict,
    resume_run,
    run_experiment,
    run_once,
    run_sharded,
    RunResult,
    save_results,
)
from .reporting import (
    fraction_within,
    latency_percentiles,
    render_comparison_summary,
    render_series_table,
    render_statistics,
    render_workload_figure,
    sparkline,
)

__all__ = [
    "checkpoint_meta",
    "config_from_meta",
    "default_cost_model",
    "DEFAULT_SEEDS",
    "EXPERIMENT_DURATION_S",
    "ExperimentConfig",
    "ExperimentResult",
    "figure6_configs",
    "figure7_configs",
    "figure8_configs",
    "fraction_within",
    "latency_percentiles",
    "make_scheduler",
    "QBS_BASIC_QUANTA_US",
    "QBS_SOURCE_INTERVAL",
    "render_comparison_summary",
    "render_series_table",
    "render_statistics",
    "render_workload_figure",
    "restore_engine",
    "result_to_dict",
    "resume_run",
    "save_results",
    "RR_BASIC_QUANTA_US",
    "run_experiment",
    "run_once",
    "run_sharded",
    "RunResult",
    "SchedulerSpec",
    "sparkline",
]
