"""SDF director: balance equations, schedule compilation, execution."""

import pytest

from repro.core.actors import Actor, FunctionActor, SinkActor, SourceActor
from repro.core.events import CWEvent
from repro.core.exceptions import DirectorError
from repro.core.waves import WaveTag
from repro.core.windows import WindowSpec
from repro.core.workflow import Workflow
from repro.directors.sdf import SDFDirector


def passthrough(name):
    return FunctionActor(
        name, lambda ctx: ctx.send("out", ctx.read("in").value)
    )


def build_chain():
    wf = Workflow("chain")
    a = passthrough("a")
    b = passthrough("b")
    sink = SinkActor("sink")
    wf.add_all([a, b, sink])
    wf.connect(a, b)
    wf.connect(b, sink)
    a.input("in").boundary = True
    return wf, a, sink


class TestScheduleCompilation:
    def test_unit_rate_repetitions_are_one(self):
        wf, *_ = build_chain()
        director = SDFDirector()
        director.attach(wf)
        assert set(director.repetitions.values()) == {1}

    def test_multirate_repetitions(self):
        # a produces 2 per firing; b consumes 1 -> b fires twice per a.
        wf = Workflow("multi")
        a = FunctionActor(
            "a",
            lambda ctx: [
                ctx.send("out", ctx.read("in").value),
                ctx.send("out", 0),
            ],
        )
        b = passthrough("b")
        sink = SinkActor("sink")
        wf.add_all([a, b, sink])
        channel = wf.connect(a, b)
        channel.source.rate = 2
        wf.connect(b, sink)
        a.input("in").boundary = True
        director = SDFDirector()
        director.attach(wf)
        assert director.repetitions["b"] == 2 * director.repetitions["a"]
        assert director.repetitions["sink"] == director.repetitions["b"]

    def test_inconsistent_rates_rejected(self):
        wf = Workflow("bad")
        a = FunctionActor("a", lambda ctx: None, inputs=(), outputs=("x", "y"))
        b = FunctionActor("b", lambda ctx: None, inputs=("p", "q"), outputs=())
        wf.add_all([a, b])
        c1 = wf.connect(a.output("x"), b.input("p"))
        c2 = wf.connect(a.output("y"), b.input("q"))
        c1.source.rate = 2
        director = SDFDirector()
        with pytest.raises(DirectorError):
            director.attach(wf)

    def test_cyclic_graph_rejected(self):
        wf = Workflow("cycle")
        a, b = passthrough("a"), passthrough("b")
        wf.add_all([a, b])
        wf.connect(a, b)
        wf.connect(b, a)
        with pytest.raises(DirectorError):
            SDFDirector().attach(wf)

    def test_windowed_port_rejected(self):
        wf = Workflow("win")
        actor = FunctionActor(
            "w",
            lambda ctx: None,
            inputs=(("in", WindowSpec.tokens(2)),),
        )
        sink = SinkActor("sink")
        wf.add_all([actor, sink])
        wf.connect(actor, sink)
        actor.input("in").boundary = True
        with pytest.raises(DirectorError):
            SDFDirector().attach(wf)

    def test_schedule_is_topological(self):
        wf, *_ = build_chain()
        director = SDFDirector()
        director.attach(wf)
        names = [actor.name for actor in director.schedule]
        assert names.index("a") < names.index("b") < names.index("sink")


class TestExecution:
    def test_run_to_quiescence_drains_injected_tokens(self):
        wf, a, sink = build_chain()
        director = SDFDirector()
        director.attach(wf)
        director.initialize_all()
        for value in (1, 2, 3):
            director.inject(a, "in", value, now=0)
        fired = director.run_to_quiescence(0)
        assert sink.values == [1, 2, 3]
        assert fired == 9  # 3 tokens x 3 actors

    def test_quiescent_graph_returns_zero(self):
        wf, a, sink = build_chain()
        director = SDFDirector()
        director.attach(wf)
        director.initialize_all()
        assert director.run_to_quiescence(0) == 0

    def test_inject_wraps_raw_values(self):
        wf, a, sink = build_chain()
        director = SDFDirector()
        director.attach(wf)
        director.initialize_all()
        director.inject(a, "in", CWEvent("x", 5, WaveTag.root(1)), now=0)
        director.run_to_quiescence(0)
        assert sink.values == ["x"]
