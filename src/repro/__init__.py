"""repro: a reproduction of CONFLuEnCE + STAFiLOS.

CONFLuEnCE is a CONtinuous workFLow ExeCution Engine: a workflow system
whose workflows are always active, reacting to unbounded streams through
windowed active queues and wave-tagged events.  STAFiLOS is its pluggable
STreAm FLOw Scheduling framework (Neophytou, Chrysanthis, Labrinidis).

This module is the **public facade**: everything a user of the engine
needs importable from one place::

    from repro import (
        Workflow, WindowSpec, SourceActor, MapActor, SinkActor,
        SCWFDirector, QBSScheduler, VirtualClock, CostModel,
        SimulationRuntime, RecordingTracer, export_chrome_trace,
    )

The deep module paths remain importable (``repro.core``,
``repro.stafilos``...) and are the right place for advanced
extension points; the facade re-exports the everyday surface.

Top-level layout:

* :mod:`repro.core` — the continuous-workflow kernel (actors, ports,
  windows, waves, directors, statistics);
* :mod:`repro.directors` — models of computation (SDF, DDF, DE, PN and the
  thread-based PNCWF continuous-workflow director);
* :mod:`repro.stafilos` — the scheduled CWF director, TM windowed receiver,
  abstract scheduler and the QBS/RR/RB/FIFO/EDF policies;
* :mod:`repro.simulation` — the virtual-time runtime and cost model used by
  the benchmark harness;
* :mod:`repro.observability` — engine-wide tracing and metrics export
  (Chrome trace-event, JSONL, Prometheus text);
* :mod:`repro.overload` — elastic overload control: the unified
  ``QoSPolicy``, token-bucket admission, backpressure and the adaptive
  SLO-targeting ``OverloadController``;
* :mod:`repro.resilience` — fault policies, supervision, dead-letter
  queues and deterministic fault injection for continuous runs;
* :mod:`repro.checkpoint` — wave-aligned checkpointing and crash
  recovery: the ``Checkpointable`` protocol, snapshot stores, the
  engine snapshot orchestrator and the periodic/barrier trigger layer;
* :mod:`repro.shard` — sharded execution: the workload partitioned by a
  group-by key across worker processes, routed over pipes, merged
  deterministically, with live shard migration via checkpoints;
* :mod:`repro.streams` — push sources, sinks and wire codecs;
* :mod:`repro.sqldb` — the in-memory relational engine the Linear Road
  workflow stores segment statistics and accidents in;
* :mod:`repro.linearroad` — the Linear Road benchmark: generator, workflow
  and validator;
* :mod:`repro.harness` — experiment configurations and figure/table
  renderers for the paper's evaluation.
"""

from . import (
    checkpoint,
    core,
    directors,
    observability,
    overload,
    resilience,
    shard,
    simulation,
    stafilos,
    streams,
)
from .checkpoint import (
    Checkpointable,
    CheckpointManifest,
    CheckpointStore,
    DirectoryCheckpointStore,
    EngineCheckpointer,
    MemoryCheckpointStore,
    restore_latest,
)
from .core import (
    Actor,
    ActorRegistry,
    ActorStats,
    build_workflow,
    CompositeActor,
    ConsumptionMode,
    CWEvent,
    FiringContext,
    FunctionActor,
    MapActor,
    Measure,
    Punctuation,
    SinkActor,
    SourceActor,
    StatisticsRegistry,
    WaveTag,
    Window,
    window_from_spec,
    WindowSpec,
    Workflow,
)
from .directors import (
    DDFDirector,
    DEDirector,
    PNCWFDirector,
    PNDirector,
    SDFDirector,
)
from .fusion import (
    detect_chains,
    FusedChain,
    fuse_workflow,
    FusionReport,
)
from .observability import (
    export_chrome_trace,
    export_jsonl,
    export_prometheus,
    get_tracer,
    NullTracer,
    RecordingTracer,
    set_tracer,
    TraceRecord,
    Tracer,
    use_tracer,
)
from .overload import (
    BacklogShedder,
    OverloadController,
    QoSPolicy,
    TokenBucket,
)
from .resilience import (
    DeadLetter,
    DeadLetterQueue,
    FaultInjector,
    FaultPolicy,
    FaultSupervisor,
    install_faults,
    parse_fault_spec,
    replay_dead_letters,
)
from .shard import (
    merge_traces,
    run_sharded,
    ShardCoordinator,
    ShardedRunResult,
    ShardMigration,
    ShardPlan,
)
from .simulation import CostModel, SimulationRuntime, VirtualClock, WallClock
from .stafilos import (
    AbstractScheduler,
    ActorState,
    AdaptiveScheduler,
    EarliestDeadlineScheduler,
    FIFOScheduler,
    LoadShedder,
    MulticoreSCWFDirector,
    QuantumPriorityScheduler,
    RateBasedScheduler,
    RoundRobinScheduler,
    SCWFDirector,
)
from .streams import (
    CallbackSink,
    HTTPStreamSource,
    PoissonSource,
    publish_lines,
    RecordingSink,
    ReplaySource,
    TCPStreamSource,
    ThrottledAlertSink,
)

#: Policy-name aliases: the paper (and the facade's users) call the
#: schedulers by their acronyms.
QBSScheduler = QuantumPriorityScheduler
RRScheduler = RoundRobinScheduler
RBScheduler = RateBasedScheduler
EDFScheduler = EarliestDeadlineScheduler

__version__ = "1.1.0"

__all__ = [
    # sub-packages (deep paths stay supported)
    "checkpoint",
    "core",
    "directors",
    "fusion",
    "observability",
    "overload",
    "resilience",
    "shard",
    "simulation",
    "stafilos",
    "streams",
    # checkpointing & recovery
    "Checkpointable",
    "CheckpointManifest",
    "CheckpointStore",
    "DirectoryCheckpointStore",
    "EngineCheckpointer",
    "MemoryCheckpointStore",
    "restore_latest",
    # workflow model
    "Actor",
    "ActorRegistry",
    "ActorStats",
    "build_workflow",
    "CompositeActor",
    "ConsumptionMode",
    "CWEvent",
    "FiringContext",
    "FunctionActor",
    "MapActor",
    "Measure",
    "Punctuation",
    "SinkActor",
    "SourceActor",
    "StatisticsRegistry",
    "WaveTag",
    "Window",
    "window_from_spec",
    "WindowSpec",
    "Workflow",
    # directors / models of computation
    "DDFDirector",
    "DEDirector",
    "PNCWFDirector",
    "PNDirector",
    "SDFDirector",
    # operator-chain fusion
    "detect_chains",
    "FusedChain",
    "fuse_workflow",
    "FusionReport",
    # STAFiLOS
    "AbstractScheduler",
    "ActorState",
    "AdaptiveScheduler",
    "EarliestDeadlineScheduler",
    "EDFScheduler",
    "FIFOScheduler",
    "LoadShedder",
    "MulticoreSCWFDirector",
    "QBSScheduler",
    "QuantumPriorityScheduler",
    "RateBasedScheduler",
    "RBScheduler",
    "RoundRobinScheduler",
    "RRScheduler",
    "SCWFDirector",
    # overload control / QoS
    "BacklogShedder",
    "OverloadController",
    "QoSPolicy",
    "TokenBucket",
    # resilience
    "DeadLetter",
    "DeadLetterQueue",
    "FaultInjector",
    "FaultPolicy",
    "FaultSupervisor",
    "install_faults",
    "parse_fault_spec",
    "replay_dead_letters",
    # sharded execution
    "merge_traces",
    "run_sharded",
    "ShardCoordinator",
    "ShardedRunResult",
    "ShardMigration",
    "ShardPlan",
    # simulation substrate
    "CostModel",
    "SimulationRuntime",
    "VirtualClock",
    "WallClock",
    # observability
    "export_chrome_trace",
    "export_jsonl",
    "export_prometheus",
    "get_tracer",
    "NullTracer",
    "RecordingTracer",
    "set_tracer",
    "TraceRecord",
    "Tracer",
    "use_tracer",
    # streams
    "CallbackSink",
    "HTTPStreamSource",
    "PoissonSource",
    "publish_lines",
    "RecordingSink",
    "ReplaySource",
    "TCPStreamSource",
    "ThrottledAlertSink",
    # misc
    "__version__",
]
