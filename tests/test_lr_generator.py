"""The Linear Road workload generator: schema, envelope, accidents."""

import pytest

from repro.linearroad.generator import (
    AccidentScript,
    LinearRoadWorkload,
    WorkloadConfig,
)
from repro.linearroad.types import (
    Lane,
    REPORT_INTERVAL_S,
    SEGMENTS_PER_XWAY,
)


@pytest.fixture(scope="module")
def workload():
    return LinearRoadWorkload(
        WorkloadConfig(duration_s=300, peak_rate=40, seed=3)
    )


class TestSchema:
    def test_reports_sorted_by_time(self, workload):
        times = [r.time for r in workload.reports()]
        assert times == sorted(times)

    def test_fields_within_domain(self, workload):
        for report in workload.reports():
            assert 0 <= report.segment < SEGMENTS_PER_XWAY
            assert report.speed >= 0
            assert report.lane in tuple(Lane)
            assert report.time < 300
            assert report.xway == 0

    def test_cars_report_every_30_seconds(self, workload):
        by_car = {}
        for report in workload.reports():
            by_car.setdefault(report.car_id, []).append(report.time)
        for times in by_car.values():
            gaps = {b - a for a, b in zip(times, times[1:])}
            assert gaps <= {REPORT_INTERVAL_S}

    def test_segment_consistent_with_position(self, workload):
        for report in workload.reports():
            assert report.segment == (report.position // 5280) % 100


class TestEnvelope:
    def test_rate_ramps_linearly(self, workload):
        series = workload.rate_series(bucket_s=30)
        rates = [rate for _, rate in series]
        # Monotone-ish ramp toward the peak.
        assert rates[-1] > rates[len(rates) // 2] > rates[0]
        assert rates[-1] == pytest.approx(40, rel=0.2)

    def test_total_report_count_matches_integral(self, workload):
        # Ramp 0 -> 40/s over 300 s integrates to ~6000 reports.
        assert len(workload.reports()) == pytest.approx(6000, rel=0.15)

    def test_scaled_config(self):
        config = WorkloadConfig(duration_s=100, peak_rate=10).scaled(2.0)
        assert config.peak_rate == 20

    def test_determinism_per_seed(self):
        a = LinearRoadWorkload(WorkloadConfig(duration_s=60, peak_rate=10, seed=5))
        b = LinearRoadWorkload(WorkloadConfig(duration_s=60, peak_rate=10, seed=5))
        assert a.reports() == b.reports()

    def test_seeds_differ(self):
        a = LinearRoadWorkload(WorkloadConfig(duration_s=60, peak_rate=10, seed=5))
        b = LinearRoadWorkload(WorkloadConfig(duration_s=60, peak_rate=10, seed=6))
        assert a.reports() != b.reports()

    def test_arrivals_in_microseconds(self, workload):
        arrivals = workload.arrivals()
        assert arrivals[0][0] < arrivals[-1][0]
        report = arrivals[0][1]
        assert arrivals[0][0] // 1_000_000 == report.time


class TestAccidents:
    def test_scripted_accident_creates_identical_reports(self):
        workload = LinearRoadWorkload(
            WorkloadConfig(
                duration_s=400,
                peak_rate=20,
                seed=1,
                accidents=(AccidentScript(at_s=100, clear_s=280, segment=30),),
            )
        )
        stopped = {}
        for report in workload.reports():
            if report.speed == 0:
                stopped.setdefault(report.car_id, []).append(report)
        # Two cars halted at the same spot.
        assert len(stopped) == 2
        spots = {
            reports[0].spot for reports in stopped.values()
        }
        assert len(spots) == 1
        for reports in stopped.values():
            assert len(reports) >= 4

    def test_unviable_script_skipped(self):
        workload = LinearRoadWorkload(
            WorkloadConfig(
                duration_s=120,
                peak_rate=20,
                accidents=(AccidentScript(at_s=110, clear_s=300, segment=30),),
            )
        )
        assert all(report.speed > 0 for report in workload.reports())

    def test_cars_resume_after_clear(self):
        workload = LinearRoadWorkload(
            WorkloadConfig(
                duration_s=500,
                peak_rate=20,
                seed=1,
                accidents=(AccidentScript(at_s=100, clear_s=250, segment=30),),
            )
        )
        crashed = {
            report.car_id
            for report in workload.reports()
            if report.speed == 0
        }
        for car in crashed:
            later = [
                r
                for r in workload.reports()
                if r.car_id == car and r.time >= 280
            ]
            assert later and all(r.speed > 0 for r in later)
