"""Declarative workflow descriptions (specification / MoC separation)."""

import pytest

from repro.core import SinkActor, WindowSpec, Workflow, WorkflowError
from repro.core.actors import Actor
from repro.core.description import (
    ActorRegistry,
    build_workflow,
    window_from_spec,
)
from repro.core.windows import Measure
from repro.simulation import CostModel, SimulationRuntime, VirtualClock
from repro.stafilos import RoundRobinScheduler, SCWFDirector


class TestWindowFromSpec:
    def test_defaults(self):
        spec = window_from_spec({"size": 4})
        assert spec.size == 4 and spec.step == 1
        assert spec.measure is Measure.TOKENS

    def test_time_measure_defaults_to_tumbling(self):
        spec = window_from_spec({"size": 60_000_000, "measure": "time"})
        assert spec.step == spec.size

    def test_full_form(self):
        spec = window_from_spec(
            {
                "size": 2,
                "step": 2,
                "measure": "waves",
                "timeout": 5,
                "group_by": "car",
                "delete_used_events": True,
            }
        )
        assert spec.measure is Measure.WAVES
        assert spec.delete_used_events

    def test_missing_size_rejected(self):
        with pytest.raises(WorkflowError):
            window_from_spec({})

    def test_unknown_measure_rejected(self):
        with pytest.raises(WorkflowError):
            window_from_spec({"size": 1, "measure": "bananas"})


def monitor_spec():
    return {
        "name": "monitor",
        "actors": [
            {
                "name": "feed",
                "type": "source",
                "arrivals": [(i * 1000, float(i)) for i in range(8)],
            },
            {
                "name": "avg",
                "type": "map",
                "function": lambda values: sum(values) / len(values),
                "window": {"size": 4, "step": 2},
                "priority": 10,
                "cost_us": 450,
            },
            {"name": "out", "type": "sink"},
        ],
        "connections": [["feed", "avg"], ["avg", "out"]],
    }


class TestBuildWorkflow:
    def test_builds_and_validates(self):
        workflow = build_workflow(monitor_spec())
        assert isinstance(workflow, Workflow)
        assert set(workflow.actors) == {"feed", "avg", "out"}
        assert workflow.actors["avg"].priority == 10
        assert workflow.actors["avg"].nominal_cost_us == 450
        assert workflow.actors["avg"].input("in").window.size == 4

    def test_built_workflow_executes(self):
        workflow = build_workflow(monitor_spec())
        clock = VirtualClock()
        director = SCWFDirector(
            RoundRobinScheduler(10_000), clock, CostModel()
        )
        director.attach(workflow)
        SimulationRuntime(director, clock).run(1.0, drain=True)
        sink = workflow.actors["out"]
        assert sink.values == [1.5, 3.5, 5.5]

    def test_port_qualified_connections(self):
        spec = {
            "name": "q",
            "actors": [
                {"name": "src", "type": "source", "arrivals": [],
                 "output": "reports"},
                {
                    "name": "fn",
                    "type": "function",
                    "function": lambda ctx: None,
                    "inputs": ["a", "b"],
                    "outputs": ["out"],
                },
                {"name": "out", "type": "sink"},
            ],
            "connections": [
                ["src.reports", "fn.a"],
                {"from": "src.reports", "to": "fn.b"},
                ["fn.out", "out.in"],
            ],
        }
        workflow = build_workflow(spec)
        assert len(workflow.channels) == 3

    def test_expired_routes(self):
        spec = monitor_spec()
        spec["actors"].append({"name": "stale", "type": "sink"})
        spec["expired"] = [["avg", "stale"]]
        workflow = build_workflow(spec)
        assert workflow.actors["avg"].input("in").expired_to is not None

    def test_unknown_actor_type_rejected(self):
        with pytest.raises(WorkflowError):
            build_workflow(
                {"actors": [{"name": "x", "type": "teleport"}]}
            )

    def test_unknown_connection_target_rejected(self):
        spec = monitor_spec()
        spec["connections"].append(["avg", "ghost"])
        with pytest.raises(WorkflowError):
            build_workflow(spec)

    def test_map_needs_callable(self):
        with pytest.raises(WorkflowError):
            build_workflow(
                {"actors": [{"name": "m", "type": "map", "function": 5}]}
            )


class TestClassActors:
    def test_dotted_path_class(self):
        spec = {
            "name": "cls",
            "actors": [
                {"name": "src", "type": "source", "arrivals": [(0, 1)]},
                {
                    "name": "toll_sink",
                    "type": "class",
                    "class": "repro.linearroad.actors.TollNotifier",
                },
            ],
            "connections": [["src", "toll_sink"]],
        }
        workflow = build_workflow(spec)
        from repro.linearroad.actors import TollNotifier

        assert isinstance(workflow.actors["toll_sink"], TollNotifier)

    def test_class_object_with_kwargs(self):
        class Custom(SinkActor):
            def __init__(self, name, tag="?"):
                super().__init__(name)
                self.tag = tag

        registry = ActorRegistry()
        spec = {
            "name": "cls2",
            "actors": [
                {"name": "src", "type": "source", "arrivals": []},
                {
                    "name": "c",
                    "type": "class",
                    "class": Custom,
                    "kwargs": {"tag": "hello"},
                },
            ],
            "connections": [["src", "c"]],
        }
        workflow = build_workflow(spec, registry)
        assert workflow.actors["c"].tag == "hello"

    def test_non_actor_class_rejected(self):
        with pytest.raises(WorkflowError):
            build_workflow(
                {
                    "actors": [
                        {"name": "c", "type": "class", "class": dict}
                    ]
                }
            )

    def test_custom_registry_type(self):
        class Probe(Actor):
            def fire(self, ctx):
                pass

        def build_probe(spec):
            probe = Probe(spec["name"])
            probe.add_input("in")
            return probe

        registry = ActorRegistry()
        registry.register("probe", build_probe)
        workflow = build_workflow(
            {
                "actors": [
                    {"name": "src", "type": "source", "arrivals": []},
                    {"name": "p", "type": "probe"},
                ],
                "connections": [["src", "p"]],
            },
            registry,
        )
        assert isinstance(workflow.actors["p"], Probe)