"""Wave-tag semantics (paper §2.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import CWEvent
from repro.core.waves import WaveGenerator, WaveScope, WaveTag
from repro.frontier import FrontierTracker


class TestWaveTag:
    def test_root_tag_path(self):
        tag = WaveTag.root(7)
        assert tag.path == (7,)
        assert tag.is_root()
        assert tag.serial == 7
        assert tag.depth == 0

    def test_child_tags_follow_paper_numbering(self):
        # Processing t_i producing n events yields t_i.1 ... t_i.n.
        root = WaveTag.root(3)
        children = [root.child(i) for i in range(1, 4)]
        assert [str(c) for c in children] == ["3.1", "3.2", "3.3"]

    def test_subwave_numbering(self):
        # t_i.3 processed into m events yields t_i.3.1 ... t_i.3.m.
        tag = WaveTag.root(1).child(3)
        sub = tag.child(2)
        assert str(sub) == "1.3.2"
        assert sub.depth == 2

    def test_parent_chain(self):
        leaf = WaveTag.root(5).child(2).child(9)
        assert str(leaf.parent) == "5.2"
        assert leaf.parent.parent == WaveTag.root(5)
        assert WaveTag.root(5).parent is None

    def test_root_tag_property(self):
        leaf = WaveTag.root(5).child(2).child(9)
        assert leaf.root_tag == WaveTag.root(5)

    def test_ancestors_nearest_first(self):
        leaf = WaveTag.root(4).child(1).child(2)
        assert [str(a) for a in leaf.ancestors()] == ["4.1", "4"]

    def test_is_ancestor_of(self):
        root = WaveTag.root(2)
        child = root.child(1)
        grandchild = child.child(5)
        assert root.is_ancestor_of(child)
        assert root.is_ancestor_of(grandchild)
        assert child.is_ancestor_of(grandchild)
        assert not child.is_ancestor_of(root)
        assert not root.is_ancestor_of(root)

    def test_same_wave(self):
        a = WaveTag.root(1).child(1)
        b = WaveTag.root(1).child(2).child(1)
        c = WaveTag.root(2)
        assert a.same_wave(b)
        assert not a.same_wave(c)

    def test_ordering_is_lexicographic(self):
        tags = [
            WaveTag.root(2),
            WaveTag.root(1).child(2),
            WaveTag.root(1),
            WaveTag.root(1).child(1).child(1),
        ]
        ordered = sorted(str(t) for t in tags)
        assert [str(t) for t in sorted(tags)] == ordered

    def test_parent_precedes_child_in_ordering(self):
        # A tag is a strict prefix of its children: (t,) sorts before
        # (t, 1), which sorts before any deeper or later sibling.
        parent = WaveTag.root(7)
        first_child = parent.child(1)
        assert parent < first_child
        assert not first_child < parent
        assert first_child < parent.child(2)
        assert first_child.child(1) < parent.child(2)
        assert sorted([first_child, parent]) == [parent, first_child]

    def test_same_wave_across_depths(self):
        root = WaveTag.root(3)
        deep = root.child(2).child(1).child(4)
        assert deep.same_wave(root)
        assert root.same_wave(deep)
        assert deep.same_wave(root.child(9))
        assert not deep.same_wave(WaveTag.root(4).child(2).child(1))

    def test_child_index_must_be_positive(self):
        with pytest.raises(ValueError):
            WaveTag.root(1).child(0)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            WaveTag(())

    def test_hashable_and_equal(self):
        assert WaveTag.root(1).child(2) == WaveTag((1, 2))
        assert len({WaveTag.root(1), WaveTag((1,))}) == 1


class TestWaveGenerator:
    def test_serials_are_monotone_and_unique(self):
        gen = WaveGenerator()
        tags = [gen.next_root() for _ in range(10)]
        serials = [t.serial for t in tags]
        assert serials == sorted(serials)
        assert len(set(serials)) == 10


class TestFrontierFollowsTagOrder:
    """The frontier advances in sorted root-tag (admission) order."""

    @settings(max_examples=50, deadline=None)
    @given(
        serials=st.lists(
            st.integers(min_value=0, max_value=999),
            min_size=1,
            max_size=12,
            unique=True,
        ),
        data=st.data(),
    )
    def test_advancement_order_equals_sorted_root_order(
        self, serials, data
    ):
        # Sources admit roots with monotone timestamps in serial order,
        # but the waves *complete* in an arbitrary permutation — the
        # frontier must still pass each admission timestamp in sorted
        # root-tag order, never skipping ahead of an outstanding root.
        tracker = FrontierTracker()
        admitted = {}
        for serial in sorted(serials):
            tag = WaveTag.root(serial)
            event = CWEvent("x", 1_000 * serial, tag)
            tracker.observe(event)
            admitted[serial] = event.timestamp
        completion = data.draw(st.permutations(sorted(serials)))

        outstanding = set(serials)
        frontiers = []
        for serial in completion:
            tracker.retire(WaveTag.root(serial))
            outstanding.discard(serial)
            frontier = tracker.frontier_ts()
            if outstanding:
                # The oldest *outstanding* root bounds the frontier,
                # whatever completed in between.
                assert frontier == admitted[min(outstanding)]
                frontiers.append(frontier)
            else:
                assert frontier is None
        # The frontier trajectory itself is monotone: sorted root order.
        assert frontiers == sorted(frontiers)


class TestWaveScope:
    def test_outputs_get_sequential_child_tags(self):
        scope = WaveScope(WaveTag.root(1))
        assert str(scope.tag_for_output()) == "1.1"
        assert str(scope.tag_for_output()) == "1.2"
        assert scope.produced == 2

    def test_close_marks_last_event(self):
        scope = WaveScope(WaveTag.root(1))
        events = []
        for _ in range(3):
            event = CWEvent("x", 0, scope.tag_for_output())
            scope.note_event(event)
            events.append(event)
        scope.close()
        assert [e.last_in_wave for e in events] == [False, False, True]

    def test_close_without_events_is_noop(self):
        scope = WaveScope(WaveTag.root(1))
        scope.close()  # must not raise
