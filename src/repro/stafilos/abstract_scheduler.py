"""The Abstract Scheduler: the extension point of STAFiLOS.

The abstract scheduler "implements most of the basic functionality of a
scheduler but it is not a complete scheduler": it owns

* the list of the workflow's actors and a per-actor queue of ready events
  sorted by timestamp (:mod:`repro.stafilos.ready`);
* the mapping from actors to their current :class:`ActorState` plus a
  dirty flag per actor so states are re-evaluated lazily;
* the *active* set, maintained as an incrementally repaired **dispatch
  index** ordered by a policy-provided comparator key;
* the hooks the director uses to signal its state changes (start/end of a
  director iteration, start/end of an actor's invocation, source firings).

Concrete policies (QBS, RR, RB...) extend it by implementing the abstract
methods: the comparator key, the state-condition rules of Table 2, and the
end-of-iteration maintenance (re-quantification, period roll-over...).

A note on data structures: the paper uses two priority queues, and so does
this implementation — but with *incremental maintenance* instead of the
naive rescan an O(A) ``min()`` would be.  Every state-transition point
(``enqueue``/``dequeue_item``/``on_actor_fire_end``/``set_state``/
``invalidate_state``) adds the touched actor to a **dirty set** (O(1));
``get_next_actor`` first *flushes* the dirty set — re-evaluating only the
touched actors and repairing their index entries — and then selects the
minimum in O(1)/O(log A) from the policy's
:mod:`~repro.stafilos.dispatch_index` (a Linux-style priority-bucket
array + occupancy bitmap for QBS, a rotating ready-ring for RR,
lazy-deletion min-heaps for EDF/RB/FIFO).  Selection is bit-identical to
the historical scan — ``min`` over the actor list equals the
``(comparator_key, actor_order)`` minimum — which the oracle property
test in ``tests/test_dispatch_index.py`` enforces.  The scan-based
selection stopped being "free" the moment workflows scaled past tens of
actors; see ``benchmarks/bench_dispatch_scaling.py`` for the measured
flat-to-logarithmic per-dispatch cost.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Optional

from ..core.actors import Actor, SourceActor
from ..core.events import CWEvent
from ..core.exceptions import SchedulerError
from ..core.statistics import StatisticsRegistry
from ..core.windows import Window
from ..observability import tracer as _obs
from .dispatch_index import LazyHeapIndex
from .ready import ReadyItem, ReadyQueue
from .states import ActorState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.workflow import Workflow


class AbstractScheduler(ABC):
    """Base class every STAFiLOS scheduling policy extends."""

    #: Short policy name used in experiment reports ("QBS", "RR", ...).
    policy_name = "abstract"

    #: Whether sources belong in the dispatch index.  Policies that serve
    #: sources through a separate interval-regulated rotation (QBS, RR,
    #: EDF) exclude them; policies whose comparator ranks sources together
    #: with internal actors (FIFO, RB, the default) include them.
    index_includes_sources = True

    #: Names of policy-specific *mutable* attributes the generic
    #: checkpoint dump captures verbatim (values must pickle and must not
    #: reference engine objects).  Policies with richer state (counters,
    #: buffers holding actors) additionally override
    #: :meth:`policy_state_dump` / :meth:`policy_state_restore`.
    checkpoint_attrs: tuple = ()

    def __init__(self):
        self.workflow: Optional["Workflow"] = None
        self.statistics: Optional[StatisticsRegistry] = None
        self.actors: list[Actor] = []
        self.sources: list[SourceActor] = []
        self.ready: dict[str, ReadyQueue] = {}
        self.states: dict[str, ActorState] = {}
        #: Per-actor flag: False means the state must be re-evaluated.
        self.state_valid: dict[str, bool] = {}
        self._now = 0
        #: Count of internal (non-source) invocations, for source pacing.
        self.internal_firings = 0
        #: Optional load-shedding policy (see repro.overload.shedding).
        self.shedder = None
        #: Optional admission gate (see repro.overload.controller): when
        #: set, its ``pump_allowance(source, now)`` caps source pumping —
        #: an allowance of 0 makes the source not-runnable this instant.
        self.admission_gate = None
        # ---- dispatch index state -----------------------------------
        #: Actor names whose state/key may have changed since the last
        #: index flush.  Adding is O(1); ``get_next_actor`` drains it.
        self._index_dirty: set[str] = set()
        #: Tie-break: position in the actor list (mirrors the historical
        #: ``min()``-returns-first-minimum semantics).
        self._actor_order: dict[str, int] = {}
        self._actors_by_name: dict[str, Actor] = {}
        self._index = None
        # ---- O(1) backlog accounting --------------------------------
        self._backlog = 0
        self._nonempty_internal = 0

    # ------------------------------------------------------------------
    # Initialization (invoked by the SCWF director)
    # ------------------------------------------------------------------
    def initialize(
        self, workflow: "Workflow", statistics: StatisticsRegistry
    ) -> None:
        self.workflow = workflow
        self.statistics = statistics
        self.actors = list(workflow.actors.values())
        self.sources = []
        self._actor_order = {
            actor.name: order for order, actor in enumerate(self.actors)
        }
        self._actors_by_name = {actor.name: actor for actor in self.actors}
        self._backlog = 0
        self._nonempty_internal = 0
        for actor in self.actors:
            self.ready[actor.name] = ReadyQueue(
                on_size_change=self._make_size_listener(actor)
            )
            self.states[actor.name] = ActorState.INACTIVE
            # Invalid until first queried: the policy's Table 2 rules
            # decide the real initial state once quanta etc. exist.
            self.state_valid[actor.name] = False
        for source in workflow.sources:
            self.register_source(source)
        self._index = self._make_dispatch_index()
        self._index_dirty = set(self._actor_order)
        self.on_initialize()

    def _make_dispatch_index(self):
        """Policy hook: the index structure holding ACTIVE actors."""
        return LazyHeapIndex()

    def _make_size_listener(self, actor: Actor):
        """Per-queue closure maintaining the O(1) backlog counters."""
        internal = not actor.is_source

        def on_size_change(old_len: int, new_len: int) -> None:
            self._backlog += new_len - old_len
            if internal:
                if old_len == 0 and new_len > 0:
                    self._nonempty_internal += 1
                elif old_len > 0 and new_len == 0:
                    self._nonempty_internal -= 1

        return on_size_change

    def register_source(self, source: SourceActor) -> None:
        """Sources are registered so policies can treat them specially."""
        self.sources.append(source)

    def on_initialize(self) -> None:
        """Policy hook: runs once after the actor lists are built."""

    # ------------------------------------------------------------------
    # Event intake (invoked by TM windowed receivers via the director)
    # ------------------------------------------------------------------
    def enqueue(
        self, actor: Actor, port_name: str, item: Window | CWEvent
    ) -> None:
        """A produced window/event becomes ready work for *actor*."""
        queue = self.ready.get(actor.name)
        if queue is None:
            raise SchedulerError(
                f"event enqueued for unknown actor {actor.name!r}"
            )
        self.admit(actor, queue, port_name, item)
        self.invalidate_state(actor)
        if _obs.ENABLED:
            _obs._TRACER.counter(
                "sched.queue_depth", self._now, len(queue), actor.name
            )
        if self.shedder is not None:
            self.shedder.enforce(self)

    def enqueue_batch(
        self, actor: Actor, port_name: str, items: "list[Window | CWEvent]"
    ) -> None:
        """A train of produced windows/events becomes ready work for *actor*.

        Equivalent to calling :meth:`enqueue` once per item, but the queue
        lookup, state invalidation and queue-depth trace counter are paid
        once per train.  With a load shedder attached the per-item path is
        kept verbatim — the shedder observes (and may act on) every single
        admission, and that interleaving is part of its contract.
        """
        if not items:
            return
        if self.shedder is not None:
            for item in items:
                self.enqueue(actor, port_name, item)
            return
        queue = self.ready.get(actor.name)
        if queue is None:
            raise SchedulerError(
                f"event enqueued for unknown actor {actor.name!r}"
            )
        self.admit_batch(actor, queue, port_name, items)
        self.invalidate_state(actor)
        if _obs.ENABLED:
            _obs._TRACER.counter(
                "sched.queue_depth", self._now, len(queue), actor.name
            )

    def admit(
        self,
        actor: Actor,
        queue: ReadyQueue,
        port_name: str,
        item: Window | CWEvent,
    ) -> None:
        """Policy hook for event admission; default: straight to the queue.

        The Rate-Based scheduler overrides this to hold events arriving
        mid-period in a buffer until the period rolls over.
        """
        queue.push(port_name, item)

    def admit_batch(
        self,
        actor: Actor,
        queue: ReadyQueue,
        port_name: str,
        items: "list[Window | CWEvent]",
    ) -> None:
        """Batch admission; must match a per-item :meth:`admit` loop.

        The default implementation bulk-pushes only when the policy kept
        the stock ``admit`` — a policy that overrides ``admit`` without
        overriding this gets the safe per-item loop.
        """
        if type(self).admit is AbstractScheduler.admit:
            queue.push_batch(port_name, items)
        else:
            for item in items:
                self.admit(actor, queue, port_name, item)

    def dequeue_item(self, actor: Actor) -> Optional[ReadyItem]:
        """Pop the next ready item for *actor* (director staging)."""
        queue = self.ready[actor.name]
        item = queue.pop()
        self.invalidate_state(actor)
        if _obs.ENABLED and item is not None:
            _obs._TRACER.counter(
                "sched.queue_depth", self._now, len(queue), actor.name
            )
        return item

    def ready_count(self, actor: Actor) -> int:
        return len(self.ready[actor.name])

    def total_backlog(self) -> int:
        """Ready items across every actor — O(1), incrementally counted."""
        return self._backlog

    def nonempty_internal_count(self) -> int:
        """Distinct internal actors currently holding ready work — O(1)."""
        return self._nonempty_internal

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def invalidate_state(self, actor: Actor) -> None:
        self.state_valid[actor.name] = False
        self._index_dirty.add(actor.name)

    def state_of(self, actor: Actor) -> ActorState:
        """Current state, re-evaluated via the policy rules when stale."""
        if not self.state_valid[actor.name]:
            previous = self.states[actor.name]
            state = self.evaluate_state(actor)
            self.states[actor.name] = state
            self.state_valid[actor.name] = True
            if state is not previous:
                if _obs.ENABLED:
                    _obs._TRACER.instant(
                        "sched.state",
                        self._now,
                        actor.name,
                        frm=previous.value,
                        to=state.value,
                    )
        return self.states[actor.name]

    def set_state(self, actor: Actor, state: ActorState) -> None:
        previous = self.states[actor.name]
        self.states[actor.name] = state
        self.state_valid[actor.name] = True
        self._index_dirty.add(actor.name)
        if state is not previous:
            if _obs.ENABLED:
                _obs._TRACER.instant(
                    "sched.state",
                    self._now,
                    actor.name,
                    frm=previous.value,
                    to=state.value,
                )

    @abstractmethod
    def evaluate_state(self, actor: Actor) -> ActorState:
        """The Table 2 state-condition rules of the concrete policy."""

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    @abstractmethod
    def comparator_key(self, actor: Actor) -> Any:
        """Ordering key of the active queue (smaller = scheduled first)."""

    def active_actors(self) -> list[Actor]:
        return [
            actor
            for actor in self.actors
            if self.state_of(actor) is ActorState.ACTIVE
        ]

    def waiting_actors(self) -> list[Actor]:
        return [
            actor
            for actor in self.actors
            if self.state_of(actor) is ActorState.WAITING
        ]

    # ------------------------------------------------------------------
    # The incrementally maintained dispatch index
    # ------------------------------------------------------------------
    def _mark_index_dirty_all(self) -> None:
        """Refresh every index entry (e.g. after a bulk re-keying).

        Unlike :meth:`invalidate_state` this does *not* discard cached
        states — only the comparator keys are recomputed at the next
        flush (used by RB when its dynamic rates are re-evaluated).
        """
        self._index_dirty.update(self._actor_order)

    def _flush_index(self) -> None:
        """Drain the dirty set, repairing the affected index entries.

        Dirty actors are processed in actor-list order so lazy state
        re-evaluation (and its trace events) happens in the same order
        the historical full scan used.
        """
        dirty = self._index_dirty
        if not dirty:
            return
        if len(dirty) > 1:
            names = sorted(dirty, key=self._actor_order.__getitem__)
        else:
            names = list(dirty)
        dirty.clear()
        index = self._index
        include_sources = self.index_includes_sources
        for name in names:
            actor = self._actors_by_name.get(name)
            if actor is None:  # pragma: no cover - defensive
                continue
            if actor.is_source and not include_sources:
                continue
            index.invalidate(name)
            if self.state_of(actor) is ActorState.ACTIVE:
                index.insert(
                    name, self.comparator_key(actor), self._actor_order[name]
                )

    def _peek_indexed(self) -> Optional[Actor]:
        """The minimum-key ACTIVE actor per the index, or ``None``."""
        if self._index is None:  # not initialized yet
            return None
        self._flush_index()
        name = self._index.peek()
        if name is None:
            return None
        return self._actors_by_name[name]

    def get_next_actor(self) -> Optional[Actor]:
        """The next actor to fire, or ``None`` to end the iteration.

        Default: the minimum-comparator-key ACTIVE actor, served from the
        dispatch index in O(1)/O(log A).  Policies override or extend this
        (QBS injects regular source firings, RR rotates).
        """
        actor = self._peek_indexed()
        if actor is None:
            return self.on_active_queue_empty()
        return actor

    def on_active_queue_empty(self) -> Optional[Actor]:
        """Hook: last chance to produce an actor before the iteration ends."""
        return None

    # ------------------------------------------------------------------
    # Event-train quantum accounting
    # ------------------------------------------------------------------
    def continue_train(self, actor: Actor) -> bool:
        """May the director re-dispatch *actor* without a fresh decision?

        Exactness contract: return ``True`` **only** when
        :meth:`get_next_actor` would certainly return *actor* — and the
        skipped call would have had no policy side effects.  ``False``
        merely means "consult me": the director then calls
        :meth:`get_next_actor` for the authoritative (and possibly
        identical) decision, so a conservative ``False`` can never change
        behaviour, only forgo batching.  Policies that can read their
        quantum accounting in O(1) override this; the default always
        defers to the full selection path.
        """
        return False

    # ------------------------------------------------------------------
    # Director signals
    # ------------------------------------------------------------------
    def on_iteration_start(self, now: int) -> None:
        self._now = now
        if self.shedder is not None:
            self.shedder.shed_sources(self, now)
        # The clock may have jumped while the engine was idle; source
        # runnability depends on "now", so those states are always stale.
        for source in self.sources:
            self.invalidate_state(source)

    def on_iteration_end(self, now: int) -> None:
        """End of a director iteration (maintenance: re-quantify etc.)."""
        self._now = now

    def on_actor_fire_start(self, actor: Actor, now: int) -> None:
        self._now = now

    def on_actor_fire_end(self, actor: Actor, cost_us: int, now: int) -> None:
        self._now = now
        if not actor.is_source:
            self.internal_firings += 1
        self.invalidate_state(actor)

    def source_has_work(self, source: SourceActor, now: int) -> bool:
        if source.pending_arrivals(now) <= 0:
            return False
        gate = self.admission_gate
        if gate is not None and gate.pump_allowance(source, now) == 0:
            return False
        return True

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def policy_state_dump(self) -> dict:
        """Policy-specific mutable state (default: ``checkpoint_attrs``)."""
        return {attr: getattr(self, attr) for attr in self.checkpoint_attrs}

    def policy_state_restore(self, state: dict) -> None:
        """Re-apply :meth:`policy_state_dump` output onto the policy."""
        for attr in self.checkpoint_attrs:
            setattr(self, attr, state[attr])

    def state_dump(self) -> dict:
        """Snapshot the scheduler (Checkpointable protocol).

        Captures the per-actor ready heaps, the cached state machine
        (states + validity flags — preserving them keeps lazy
        re-evaluation order, and therefore dispatch decisions, exactly
        as they would have been without a checkpoint), the engine-time
        cursor, and the policy's own state.  The dispatch index is
        *derived* data and is deliberately absent: restore rebuilds it
        empty and marks every actor dirty, and the oracle-verified
        index invariant (selection ≡ min over ``(comparator_key,
        actor_order)``) guarantees the rebuilt index dispatches
        identically.
        """
        return {
            "now": self._now,
            "internal_firings": self.internal_firings,
            "ready": {
                name: queue.snapshot_items()
                for name, queue in self.ready.items()
            },
            "states": {
                name: state.value for name, state in self.states.items()
            },
            "state_valid": dict(self.state_valid),
            "policy": self.policy_state_dump(),
        }

    def state_restore(self, state: dict) -> None:
        """Re-apply a dump onto a freshly :meth:`initialize`-d scheduler."""
        from ..core.exceptions import CheckpointError

        self._now = int(state["now"])
        self.internal_firings = int(state["internal_firings"])
        for name, items in state["ready"].items():
            queue = self.ready.get(name)
            if queue is None:
                raise CheckpointError(
                    f"cannot restore ready queue for unknown actor {name!r} "
                    "(was the workflow rebuilt with the same builder?)"
                )
            queue.restore_items(items)
        for name, value in state["states"].items():
            self.states[name] = ActorState(value)
        self.state_valid = dict(state["state_valid"])
        self.policy_state_restore(state["policy"])
        # The index holds derived entries only: rebuild it empty and let
        # the next flush repopulate it from the restored states/keys.
        self._index = self._make_dispatch_index()
        self._index_dirty = set(self._actor_order)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line configuration summary for experiment reports."""
        return self.policy_name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"
