"""Wave-aligned checkpointing and crash recovery (``repro.checkpoint``).

The subsystem has three layers:

* :mod:`~repro.checkpoint.protocol` — the :class:`Checkpointable`
  structure/data contract every engine component implements;
* :mod:`~repro.checkpoint.store` — pluggable snapshot stores: the
  in-memory test store and the atomic, CRC-verified, retention-bounded
  :class:`DirectoryCheckpointStore`;
* :mod:`~repro.checkpoint.snapshot` + :mod:`~repro.checkpoint.checkpointer`
  — the orchestrator that walks the engine and the trigger layer that
  decides *when* (periodic engine-time boundaries or an explicit
  barrier) and records trace events and statistics counters.

Quickstart::

    store = DirectoryCheckpointStore("ckpts")
    ckpt = EngineCheckpointer(director, store, every_us=5_000_000)
    runtime = SimulationRuntime(director, ..., checkpointer=ckpt)
    runtime.run(...)                    # snapshots every 5 engine seconds
    ...                                 # crash!  rebuild the same engine:
    manifest = restore_latest(director2, store)   # resume from manifest
"""

from .checkpointer import EngineCheckpointer, restore_latest
from .protocol import Checkpointable, dump_component, restore_component
from .snapshot import (
    SNAPSHOT_FORMAT,
    capture_snapshot,
    deserialize_snapshot,
    restore_snapshot,
    serialize_snapshot,
    structure_fingerprint,
)
from .store import (
    CheckpointManifest,
    CheckpointStore,
    DirectoryCheckpointStore,
    MemoryCheckpointStore,
)

__all__ = [
    "Checkpointable",
    "CheckpointManifest",
    "CheckpointStore",
    "DirectoryCheckpointStore",
    "EngineCheckpointer",
    "MemoryCheckpointStore",
    "SNAPSHOT_FORMAT",
    "capture_snapshot",
    "deserialize_snapshot",
    "dump_component",
    "restore_component",
    "restore_latest",
    "restore_snapshot",
    "serialize_snapshot",
    "structure_fingerprint",
]
