#!/usr/bin/env python
"""Duplicate/unsorted-import check (stdlib-only ruff "I"/F811 stand-in).

``make lint`` prefers ruff (``select = ["I", ...]`` in pyproject.toml
catches the full rule set), but the reference container ships without
it — this checker enforces the two invariants the repo actually cares
about in any environment:

* **no duplicate imports**: a module must not be imported twice at the
  top level of a file (the class of bug where ``from ..core.exceptions
  import ...`` appeared twice in ``scwf_director.py``);
* **sorted import runs**: within one contiguous block of top-level
  imports, module names must be non-decreasing (case-insensitive, with
  relative imports compared by their dot-prefix then name, mirroring
  isort's default ordering closely enough to keep blocks tidy).

Exit status 0 when clean; 1 with one ``file:line`` diagnostic per
violation otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOTS = ("src", "tests", "benchmarks", "examples", "tools")


def _module_key(node: ast.stmt) -> tuple:
    """Sort key approximating isort's defaults.

    Straight ``import X`` statements come before ``from Y import``
    statements within a run (isort's default, ``force_sort_within_
    sections`` off), each sub-block alphabetical by lowercased module
    path.  For relative imports the leading dots are part of the key,
    which makes deeper relatives sort first (``...core.actors`` <
    ``..abstract_scheduler``) — exactly the repo's established style.
    """
    if isinstance(node, ast.Import):
        return (0, node.names[0].name.lower())
    assert isinstance(node, ast.ImportFrom)
    return (1, ("." * node.level + (node.module or "")).lower())


def _dedupe_key(node: ast.stmt) -> list[tuple]:
    """One key per imported module for duplicate detection.

    ``from pkg import sub as _alias`` lines are exempt when *every*
    name is aliased: importing two submodules of one package on two
    lines is deliberate, not a duplicated import.
    """
    if isinstance(node, ast.Import):
        return [("import", alias.name) for alias in node.names]
    assert isinstance(node, ast.ImportFrom)
    if all(alias.asname is not None for alias in node.names):
        return []
    return [("from", node.level, node.module or "")]


def check_file(path: Path) -> list[str]:
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError as exc:  # compileall's job, but report anyway
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]
    problems: list[str] = []
    seen: dict[tuple, int] = {}
    previous: ast.stmt | None = None
    for node in tree.body:
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            previous = None
            continue
        for key in _dedupe_key(node):
            if key in seen:
                problems.append(
                    f"{path}:{node.lineno}: duplicate import of "
                    f"{key[-1] or '.'!s} (first at line {seen[key]})"
                )
            else:
                seen[key] = node.lineno
        if (
            previous is not None
            and node.lineno == getattr(previous, "end_lineno", -2) + 1
            and _module_key(node) < _module_key(previous)
        ):
            problems.append(
                f"{path}:{node.lineno}: import of "
                f"{_module_key(node)[1] or '.'} is not sorted after "
                f"{_module_key(previous)[1] or '.'}"
            )
        previous = node
    return problems


def main(argv: list[str]) -> int:
    base = Path(argv[1]) if len(argv) > 1 else Path(".")
    problems: list[str] = []
    for root in ROOTS:
        directory = base / root
        if not directory.is_dir():
            continue
        for path in sorted(directory.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"check_imports: {len(problems)} problem(s)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
