"""The experiment harness: configs (Table 3), runner, renderers."""

import pytest

from repro.harness import (
    default_cost_model,
    ExperimentConfig,
    figure6_configs,
    figure7_configs,
    figure8_configs,
    make_scheduler,
    QBS_BASIC_QUANTA_US,
    render_comparison_summary,
    render_series_table,
    render_workload_figure,
    RR_BASIC_QUANTA_US,
    run_experiment,
    SchedulerSpec,
    sparkline,
)
from repro.linearroad.generator import WorkloadConfig
from repro.stafilos.schedulers import (
    FIFOScheduler,
    QuantumPriorityScheduler,
    RateBasedScheduler,
    RoundRobinScheduler,
)

SMALL_WORKLOAD = WorkloadConfig(duration_s=120, peak_rate=30, accidents=())


class TestConfigs:
    def test_table3_parameter_sets(self):
        assert QBS_BASIC_QUANTA_US == (500, 1_000, 5_000, 10_000, 20_000)
        assert RR_BASIC_QUANTA_US == (5_000, 10_000, 20_000, 40_000)

    def test_figure_config_families(self):
        assert [c.label for c in figure6_configs()] == [
            "RR-q5000", "RR-q10000", "RR-q20000", "RR-q40000",
        ]
        assert len(figure7_configs()) == 5
        labels = [c.label for c in figure8_configs()]
        assert labels == ["RR-q40000", "QBS-q500", "RB", "PNCWF"]

    def test_default_duration_matches_paper(self):
        assert figure8_configs()[0].workload.duration_s == 600

    def test_with_seeds_and_scaled_duration(self):
        config = figure8_configs()[0].with_seeds((9,)).scaled_duration(60)
        assert config.seeds == (9,)
        assert config.workload.duration_s == 60

    def test_cost_model_calibration_knobs(self):
        model = default_cost_model()
        assert model.scale > 1.0
        assert model.sync_per_event_us > 0
        assert model.context_switch_us > 0


class TestMakeScheduler:
    def test_kinds(self):
        assert isinstance(
            make_scheduler(SchedulerSpec("QBS", 500)),
            QuantumPriorityScheduler,
        )
        assert isinstance(
            make_scheduler(SchedulerSpec("RR", 1000)), RoundRobinScheduler
        )
        assert isinstance(make_scheduler(SchedulerSpec("RB")), RateBasedScheduler)
        assert isinstance(make_scheduler(SchedulerSpec("FIFO")), FIFOScheduler)

    def test_unknown_kind_rejected(self):
        from repro.core.exceptions import SimulationError

        with pytest.raises(SimulationError):
            make_scheduler(SchedulerSpec("NOPE"))

    def test_parameters_forwarded(self):
        scheduler = make_scheduler(SchedulerSpec("QBS", 1234, 9))
        assert scheduler.basic_quantum_us == 1234
        assert scheduler.source_interval == 9


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        config = ExperimentConfig(
            SchedulerSpec("RR", 20_000),
            workload=SMALL_WORKLOAD,
            seeds=(1, 2),
        )
        return run_experiment(config)

    def test_runs_per_seed(self, result):
        assert len(result.runs) == 2
        assert all(run.tolls > 0 for run in result.runs)

    def test_series_merged_across_seeds(self, result):
        merged_samples = sum(n for _, _, n in result.series.points)
        per_run = sum(
            sum(n for _, _, n in run.series.points) for run in result.runs
        )
        assert merged_samples == per_run

    def test_low_load_no_thrash(self, result):
        assert result.thrash_time_s is None
        assert result.thrash_input_rate() is None
        assert result.mean_pre_thrash_s() < 1.0

    def test_thrash_rate_maps_time_to_rate(self):
        config = ExperimentConfig(
            SchedulerSpec("RR", 20_000), workload=SMALL_WORKLOAD
        )
        from repro.harness.experiment import ExperimentResult
        from repro.linearroad.metrics import ResponseTimeSeries

        series = ResponseTimeSeries(
            10, [(0, 0.5, 1), (60, 9.0, 1), (70, 9.0, 1), (80, 9.0, 1)]
        )
        result = ExperimentResult(config, series)
        assert result.thrash_time_s == 60
        assert result.thrash_input_rate() == pytest.approx(
            30 * 60 / 120
        )


class TestRenderers:
    def make_result(self, label="RR-q20000"):
        from repro.harness.experiment import ExperimentResult
        from repro.linearroad.metrics import ResponseTimeSeries

        config = ExperimentConfig(
            SchedulerSpec("RR", 20_000), workload=SMALL_WORKLOAD
        )
        series = ResponseTimeSeries(10, [(0, 0.5, 3), (10, 1.5, 3)])
        return ExperimentResult(config, series)

    def test_series_table_contains_labels_and_values(self):
        result = self.make_result()
        text = render_series_table([result], "Figure X", bucket_stride=1)
        assert "RR-q20000" in text
        assert "0.500" in text
        assert "1.500" in text
        assert "summary:" in text

    def test_sparkline_levels(self):
        line = sparkline([0.0, 5.0, 10.0, 20.0])
        assert line[0] == " "
        assert line[-1] == "@"
        assert len(line) == 4

    def test_workload_figure(self):
        text = render_workload_figure([(0, 10.0), (10, 20.0)])
        assert "Figure 5" in text
        assert "20.0" in text

    def test_comparison_summary_dict(self):
        summary = render_comparison_summary([self.make_result()])
        entry = summary["RR-q20000"]
        assert set(entry) == {
            "mean_pre_thrash_s",
            "thrash_time_s",
            "thrash_rate",
            "max_response_s",
        }
