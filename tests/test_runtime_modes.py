"""Execution-mode coverage: timed windows under the threaded simulator,
the wall-clock SCWF engine, and DE simultaneity ordering."""

import pytest

from repro.core import (
    FunctionActor,
    MapActor,
    SinkActor,
    SourceActor,
    WindowSpec,
    Workflow,
)
from repro.core.events import CWEvent
from repro.core.waves import WaveTag
from repro.directors import DEDirector
from repro.simulation import (
    CostModel,
    SimulationRuntime,
    ThreadedCWFDirector,
    VirtualClock,
    WallClock,
)
from repro.stafilos import RoundRobinScheduler, SCWFDirector

SECOND = 1_000_000


class TestThreadedTimedWindows:
    def test_timeout_closes_quiet_window_in_threaded_sim(self):
        workflow = Workflow("threaded-timed")
        source = SourceActor("src", arrivals=[(0, 5.0), (100_000, 7.0)])
        source.add_output("out")
        mean = MapActor(
            "mean",
            lambda values: sum(values) / len(values),
            window=WindowSpec.time(
                1 * SECOND, timeout=SECOND // 2
            ),
        )
        sink = SinkActor("sink")
        workflow.add_all([source, mean, sink])
        workflow.connect(source, mean)
        workflow.connect(mean, sink)
        clock = VirtualClock()
        director = ThreadedCWFDirector(clock, CostModel())
        director.attach(workflow)
        SimulationRuntime(director, clock).run(10.0, drain=True)
        assert sink.values == [6.0]

    def test_next_window_deadline_reported(self):
        workflow = Workflow("deadline")
        source = SourceActor("src", arrivals=[(0, 1.0)])
        source.add_output("out")
        agg = MapActor(
            "agg",
            lambda values: values,
            window=WindowSpec.time(SECOND, timeout=SECOND),
        )
        sink = SinkActor("sink")
        workflow.add_all([source, agg, sink])
        workflow.connect(source, agg)
        workflow.connect(agg, sink)
        clock = VirtualClock()
        director = ThreadedCWFDirector(clock, CostModel())
        director.attach(workflow)
        director.initialize_all()
        director.run_iteration()
        assert director.next_window_deadline() == 2 * SECOND


class TestWallClockSCWF:
    def test_scheduled_engine_runs_live(self):
        """The SCWF director on a real clock: a live scheduled engine."""
        workflow = Workflow("wall")
        # 2 ms of event time between arrivals at 1:1 scale.
        source = SourceActor(
            "src", arrivals=[(i * 2_000, i) for i in range(10)]
        )
        source.add_output("out")
        double = MapActor("double", lambda v: v * 2)
        sink = SinkActor("sink")
        workflow.add_all([source, double, sink])
        workflow.connect(source, double)
        workflow.connect(double, sink)
        clock = WallClock()
        director = SCWFDirector(
            RoundRobinScheduler(10_000), clock, CostModel()
        )
        director.attach(workflow)
        runtime = SimulationRuntime(director, clock)
        runtime.run(until_s=1.0, drain=True)
        assert sink.values == [i * 2 for i in range(10)]
        # Responses measured in real elapsed microseconds: non-negative.
        assert all(r >= 0 for _, r in sink.response_times_us)


class TestDESimultaneity:
    def test_equal_timestamps_processed_in_post_order(self):
        workflow = Workflow("de-sim")
        log = []
        left = FunctionActor(
            "left", lambda ctx: log.append(("left", ctx.read("in").value)),
            outputs=(),
        )
        right = FunctionActor(
            "right", lambda ctx: log.append(("right", ctx.read("in").value)),
            outputs=(),
        )
        left.add_output("done")
        right.add_output("done")
        sink = SinkActor("sink")
        workflow.add_all([left, right, sink])
        workflow.connect(left.output("done"), sink.input("in"))
        workflow.connect(right.output("done"), sink.input("in"))
        left.input("in").boundary = True
        right.input("in").boundary = True
        director = DEDirector()
        director.attach(workflow)
        director.initialize_all()
        director.inject(left, "in", CWEvent("a", 10, WaveTag.root(1)), 0)
        director.inject(right, "in", CWEvent("b", 10, WaveTag.root(2)), 0)
        director.inject(left, "in", CWEvent("c", 10, WaveTag.root(3)), 0)
        director.run_to_quiescence(0)
        assert log == [("left", "a"), ("right", "b"), ("left", "c")]
