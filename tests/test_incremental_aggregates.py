"""Compensated sliding aggregates (§4.3's stream-optimized actors)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MapActor, SinkActor, SourceActor, WindowSpec, Workflow
from repro.core.exceptions import ConfluenceError
from repro.simulation import CostModel, SimulationRuntime, VirtualClock
from repro.stafilos import RoundRobinScheduler, SCWFDirector
from repro.streams import IncrementalAggActor, SlidingAggregate


class TestSlidingAggregate:
    def test_partial_window(self):
        window = SlidingAggregate(4)
        window.add(2.0)
        window.add(4.0)
        assert not window.full
        assert window.sum == 6.0
        assert window.mean == 3.0
        assert window.min == 2.0 and window.max == 4.0

    def test_expiry_compensates_sum(self):
        window = SlidingAggregate(2)
        assert window.add(1.0) is None
        assert window.add(2.0) is None
        assert window.add(3.0) == 1.0  # 1.0 slid out
        assert window.sum == 5.0

    def test_min_max_track_expiry(self):
        window = SlidingAggregate(3)
        for value in (5.0, 1.0, 4.0, 2.0):
            window.add(value)
        # Window now [1, 4, 2].
        assert window.min == 1.0 and window.max == 4.0
        window.add(3.0)  # -> [4, 2, 3]
        assert window.min == 2.0 and window.max == 4.0

    def test_empty_aggregates_raise(self):
        window = SlidingAggregate(2)
        with pytest.raises(ConfluenceError):
            window.mean
        with pytest.raises(ConfluenceError):
            window.min

    def test_size_validated(self):
        with pytest.raises(ConfluenceError):
            SlidingAggregate(0)

    @given(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False
            ),
            min_size=1,
            max_size=80,
        ),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=80)
    def test_matches_naive_recompute(self, values, size):
        """The compensated aggregates equal a from-scratch recompute."""
        window = SlidingAggregate(size)
        # Compensated sums accumulate bounded floating-point drift; allow
        # absolute error proportional to the magnitudes involved.
        drift = 1e-7 * max(abs(v) for v in values) * len(values) + 1e-9
        for index, value in enumerate(values):
            window.add(value)
            reference = values[max(0, index + 1 - size) : index + 1]
            assert window.count == len(reference)
            assert window.sum == pytest.approx(sum(reference), abs=drift)
            assert window.min == min(reference)
            assert window.max == max(reference)
            assert window.mean == pytest.approx(
                sum(reference) / len(reference), abs=drift
            )


class TestIncrementalAggActor:
    def run_pipeline(self, actor, values):
        workflow = Workflow("agg")
        source = SourceActor(
            "src", arrivals=[(i * 1000, v) for i, v in enumerate(values)]
        )
        source.add_output("out")
        sink = SinkActor("sink")
        workflow.add_all([source, actor, sink])
        workflow.connect(source, actor)
        workflow.connect(actor, sink)
        clock = VirtualClock()
        director = SCWFDirector(
            RoundRobinScheduler(10_000), clock, CostModel()
        )
        director.attach(workflow)
        SimulationRuntime(director, clock).run(1.0, drain=True)
        return sink.values

    def test_matches_windowed_recompute(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        incremental = self.run_pipeline(
            IncrementalAggActor("inc", size=3, aggregate="mean"), values
        )
        recompute = self.run_pipeline(
            MapActor(
                "win",
                lambda window: sum(window) / len(window),
                window=WindowSpec.tokens(3, 1),
            ),
            values,
        )
        assert incremental == pytest.approx(recompute)

    def test_grouped_aggregation(self):
        values = [
            {"k": "a", "v": 1.0},
            {"k": "b", "v": 10.0},
            {"k": "a", "v": 3.0},
            {"k": "b", "v": 30.0},
        ]
        out = self.run_pipeline(
            IncrementalAggActor(
                "inc",
                size=2,
                aggregate="sum",
                value_fn=lambda p: p["v"],
                group_by=lambda p: p["k"],
            ),
            values,
        )
        assert out == [("a", 4.0), ("b", 40.0)]

    def test_unsupported_aggregate_rejected(self):
        with pytest.raises(ConfluenceError):
            IncrementalAggActor("bad", size=2, aggregate="median")

    def test_min_aggregate(self):
        out = self.run_pipeline(
            IncrementalAggActor("inc", size=2, aggregate="min"),
            [5.0, 3.0, 4.0],
        )
        assert out == [3.0, 3.0]
