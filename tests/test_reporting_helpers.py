"""Latency percentiles, QoS fractions, and the statistics renderer."""

import pytest

from repro.core import MapActor, SinkActor, SourceActor, Workflow
from repro.core.statistics import StatisticsRegistry
from repro.harness import (
    fraction_within,
    latency_percentiles,
    render_statistics,
)

US = 1_000_000


def samples(responses_s):
    return [(i * US, int(r * US)) for i, r in enumerate(responses_s)]


class TestLatencyPercentiles:
    def test_empty_returns_zeros(self):
        assert latency_percentiles([]) == {50: 0.0, 90: 0.0, 99: 0.0}

    def test_median_of_odd_series(self):
        result = latency_percentiles(samples([1, 2, 3]), percentiles=(50,))
        assert result[50] == 2.0

    def test_p99_close_to_max(self):
        data = samples(list(range(1, 101)))
        result = latency_percentiles(data, percentiles=(99,))
        assert result[99] == pytest.approx(99, abs=1)

    def test_unsorted_input_handled(self):
        result = latency_percentiles(samples([5, 1, 3]), percentiles=(50,))
        assert result[50] == 3.0


class TestFractionWithin:
    def test_empty(self):
        assert fraction_within([], 1_000) == 0.0

    def test_mixed(self):
        data = samples([0.5, 1.5, 2.5, 0.1])
        assert fraction_within(data, 1 * US) == 0.5

    def test_boundary_inclusive(self):
        data = samples([1.0])
        assert fraction_within(data, 1 * US) == 1.0


class TestRenderStatistics:
    def test_table_shape_and_ordering(self):
        registry = StatisticsRegistry()
        busy = MapActor("busy", lambda v: v)
        idle = MapActor("idle", lambda v: v)
        for _ in range(5):
            registry.record_invocation(busy, 100)
        registry.record_invocation(idle, 999)
        text = render_statistics(registry)
        lines = text.splitlines()
        assert "actor" in lines[0]
        # Most-fired first.
        assert lines[2].startswith("busy")
        assert "5" in lines[2]

    def test_top_limits_rows(self):
        registry = StatisticsRegistry()
        for index in range(30):
            registry.record_invocation(
                MapActor(f"a{index}", lambda v: v), 10
            )
        text = render_statistics(registry, top=5)
        assert len(text.splitlines()) == 2 + 5
