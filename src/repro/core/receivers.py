"""Receivers: the queue objects sitting at the receiving end of a channel.

In Kepler/PtolemyII the *receiver* is supplied by the director, not by the
actor — the director thereby controls the communication model.  This module
defines the director-agnostic receivers:

* :class:`FIFOReceiver` — a plain buffered queue (used by SDF/DDF/PN/DE);
* :class:`WindowedReceiver` — the CONFLuEnCE receiver: every ``put`` stamps
  the token into a :class:`~repro.core.events.CWEvent`, routes it through a
  :class:`~repro.core.windows.WindowOperator`, and any produced windows are
  stored on an output queue that the owning actor's ``get`` drains.

The STAFiLOS ``TMWindowedReceiver`` (in :mod:`repro.stafilos.tm_receiver`)
extends :class:`WindowedReceiver` so produced windows are handed to the
scheduler instead of buffered locally.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Optional

from ..observability import tracer as _obs
from .events import CWEvent
from .exceptions import ReceiverError
from .windows import Window, WindowOperator, WindowSpec


class Receiver(ABC):
    """Abstract receiver: the director-provided end point of a channel."""

    def __init__(self, port=None):
        #: The input port this receiver belongs to (set on attachment).
        self.port = port

    @abstractmethod
    def put(self, event: CWEvent) -> None:
        """Accept an event arriving over the channel."""

    def put_batch(self, events: list[CWEvent]) -> None:
        """Accept a train of events in arrival order.

        Semantically identical to ``for event in events: self.put(event)``;
        subclasses override it to amortize per-event bookkeeping.
        """
        for event in events:
            self.put(event)

    @abstractmethod
    def get(self) -> Any:
        """Return the next readable item (event or window)."""

    @abstractmethod
    def has_token(self) -> bool:
        """True when :meth:`get` would succeed."""

    def size(self) -> int:
        """Number of readable items currently buffered."""
        return 1 if self.has_token() else 0

    def clear(self) -> None:
        """Discard all buffered content."""


class FIFOReceiver(Receiver):
    """An unbounded first-in/first-out event queue."""

    def __init__(self, port=None):
        super().__init__(port)
        self._queue: deque[CWEvent] = deque()

    def put(self, event: CWEvent) -> None:
        self._queue.append(event)

    def put_batch(self, events: list[CWEvent]) -> None:
        self._queue.extend(events)

    def get(self) -> CWEvent:
        if not self._queue:
            raise ReceiverError(
                f"get() on empty FIFO receiver of port {self.port!r}"
            )
        return self._queue.popleft()

    def has_token(self) -> bool:
        return bool(self._queue)

    def size(self) -> int:
        return len(self._queue)

    def peek(self) -> CWEvent:
        if not self._queue:
            raise ReceiverError("peek() on empty FIFO receiver")
        return self._queue[0]

    def clear(self) -> None:
        self._queue.clear()

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        """Snapshot the buffered events (Checkpointable protocol)."""
        return {"queue": list(self._queue)}

    def state_restore(self, state: dict) -> None:
        """Re-apply dumped buffered events (Checkpointable protocol)."""
        self._queue = deque(state["queue"])


class WindowedReceiver(Receiver):
    """The CONFLuEnCE windowed receiver.

    ``put`` inserts the event into the appropriate group-by queue of the
    window operator and, within the same call, checks whether a new window
    is produced; produced windows are stored on the output queue returned by
    ``get``.  Expired events accumulate on :attr:`expired` until drained
    (optionally by a dedicated workflow activity).
    """

    def __init__(self, spec: WindowSpec, port=None):
        super().__init__(port)
        self.spec = spec
        self.operator = WindowOperator(spec)
        self._windows: deque[Window] = deque()
        #: Lateness policy for events behind the applied frontier
        #: (:class:`repro.frontier.LatenessPolicy`); ``None`` admits all.
        self.lateness = None
        #: Newest event-time frontier applied to this queue.
        self._frontier_us = -1

    # ------------------------------------------------------------------
    def put(self, event: CWEvent) -> None:
        from .punctuation import Punctuation, Watermark

        value = event.value
        if isinstance(value, Watermark):
            # Frontier assertion: close complete time panes, remember
            # the bound for lateness classification, consume the item.
            self.close_on_frontier(value.up_to_us)
            return
        if isinstance(value, Punctuation):
            # Control item: close every time window the assertion
            # completes.  Count/wave windows are unaffected — their
            # completeness does not depend on timestamps.
            from .windows import Measure

            if self.spec.measure is Measure.TIME:
                for window in self.operator.force_timeout(
                    now=value.up_to_us
                ):
                    self._deliver(window)
                self._route_expired()
            return
        if (
            self.lateness is not None
            and self._frontier_us >= 0
            and event.timestamp < self._frontier_us
        ):
            disposition = self.lateness.disposition(
                event.timestamp, self._frontier_us
            )
            if disposition != "ontime":
                self._dispose_late(event, disposition)
                return
        for window in self.operator.put(event):
            self._deliver(window)
        self._route_expired()

    def put_batch(self, events: list[CWEvent]) -> None:
        """Insert a train of events through one operator call.

        Falls back to per-event :meth:`put` whenever expired routing is
        configured, the train carries control items, or a lateness
        policy is armed — all interleave side effects between
        insertions, so only the plain streaming case is amortized.
        Window production order is identical either way.
        """
        from .punctuation import Punctuation, Watermark

        target = self.port.expired_to if self.port is not None else None
        if (
            target is not None
            or (self.lateness is not None and self._frontier_us >= 0)
            or any(
                isinstance(event.value, (Punctuation, Watermark))
                for event in events
            )
        ):
            for event in events:
                self.put(event)
            return
        for window in self.operator.put_batch(events):
            self._deliver(window)

    def _dispose_late(self, event: CWEvent, disposition: str) -> None:
        """Drop or side-output one event the lateness policy rejected."""
        if _obs.ENABLED:
            _obs._TRACER.instant(
                "event.late",
                event.timestamp,
                self.port.actor.name if self.port is not None else "?",
                frontier=self._frontier_us,
                disposition=disposition,
            )
        self._note_late(event)
        if disposition == "expired":
            target = self.port.expired_to if self.port is not None else None
            if target is not None:
                target.put(event)

    def _note_late(self, event: CWEvent) -> None:
        """Hook for subclasses to count/retire a rejected late event."""

    def _deliver(self, window: Window) -> None:
        """Route a produced window; subclasses override to hand it off."""
        if _obs.ENABLED and self.port is not None:
            _obs._TRACER.instant(
                "window.ready",
                window.timestamp if len(window) else 0,
                self.port.actor.name,
                port=self.port.name,
                size=len(window),
            )
        self._windows.append(window)

    def _route_expired(self) -> None:
        """Forward expired events to the declared handler port, if any."""
        target = self.port.expired_to if self.port is not None else None
        if target is None or not self.operator.expired:
            return
        for event in self.operator.drain_expired():
            target.put(event)

    def get(self) -> Window:
        if not self._windows:
            raise ReceiverError(
                f"get() on windowed receiver of port {self.port!r} "
                "with no produced window"
            )
        return self._windows.popleft()

    def has_token(self) -> bool:
        return bool(self._windows)

    def size(self) -> int:
        return len(self._windows)

    # ------------------------------------------------------------------
    # Timeouts and maintenance
    # ------------------------------------------------------------------
    def next_deadline(self) -> Optional[int]:
        """Event-time deadline of the earliest pending time window."""
        return self.operator.next_deadline()

    def force_timeout(self, now: Optional[int] = None) -> int:
        """Force-close pending windows; returns how many were produced."""
        produced = self.operator.force_timeout(now)
        for window in produced:
            self._deliver(window)
        self._route_expired()
        return len(produced)

    def next_frontier_boundary(self, up_to_us: int):
        """Earliest closable time-pane boundary at or before *up_to_us*."""
        return self.operator.next_frontier_boundary(up_to_us)

    def close_on_frontier(self, up_to_us: int) -> int:
        """Apply an event-time frontier; returns produced window count.

        Closes every complete time pane (right boundary at or before
        *up_to_us*) and records the bound so later arrivals behind it
        are classified by the lateness policy.  Count/wave windows only
        record the bound.
        """
        if up_to_us > self._frontier_us:
            self._frontier_us = up_to_us
        produced = self.operator.close_on_frontier(up_to_us)
        for window in produced:
            self._deliver(window)
        self._route_expired()
        return len(produced)

    @property
    def expired(self) -> deque[CWEvent]:
        return self.operator.expired

    def drain_expired(self) -> list[CWEvent]:
        return self.operator.drain_expired()

    def pending_events(self) -> int:
        """Events buffered inside the operator, not yet in any window."""
        return self.operator.pending_count()

    def clear(self) -> None:
        self._windows.clear()
        self.operator = WindowOperator(self.spec)

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        """Snapshot operator state + produced-window queue (Checkpointable)."""
        state = {
            "operator": self.operator.state_dump(),
            "windows": list(self._windows),
        }
        if self._frontier_us >= 0:
            # Only frontier-enabled runs carry the key, so dumps of
            # frontier-less runs stay byte-identical to the seed's.
            state["frontier_us"] = self._frontier_us
        return state

    def state_restore(self, state: dict) -> None:
        """Re-apply a dump in place on the rebuilt receiver (Checkpointable)."""
        self.operator.state_restore(state["operator"])
        self._windows = deque(state["windows"])
        self._frontier_us = state.get("frontier_us", -1)
