"""Timekeepers: timestamp discipline for external and internal events.

CONFLuEnCE's timing components stamp every token entering the system and
keep per-actor notions of "the time of the last event seen", which timed
windows and response-time metrics rely on.  The :class:`TimeKeeper` here
enforces monotone external timestamps per source and lets runtimes convert
between seconds (workload descriptions) and the engine's microsecond ticks.
"""

from __future__ import annotations

from typing import Optional

from .exceptions import ConfluenceError

US_PER_S = 1_000_000
US_PER_MS = 1_000


def seconds_to_us(seconds: float) -> int:
    """Convert seconds to integral engine microseconds."""
    return int(round(seconds * US_PER_S))


def us_to_seconds(us: int) -> float:
    """Convert engine microseconds back to seconds."""
    return us / US_PER_S


class TimestampViolation(ConfluenceError):
    """An external event was stamped earlier than its predecessor."""


class TimeKeeper:
    """Tracks, validates and advances event-time per named stream."""

    def __init__(self, allow_equal: bool = True):
        self._last: dict[str, int] = {}
        self._allow_equal = allow_equal

    def stamp(self, stream: str, timestamp_us: int) -> int:
        """Validate a proposed timestamp on *stream* and record it."""
        last = self._last.get(stream)
        if last is not None:
            if timestamp_us < last or (
                timestamp_us == last and not self._allow_equal
            ):
                raise TimestampViolation(
                    f"stream {stream!r}: timestamp {timestamp_us} regresses "
                    f"behind {last}"
                )
        self._last[stream] = timestamp_us
        return timestamp_us

    def last(self, stream: str) -> Optional[int]:
        return self._last.get(stream)

    def latest(self) -> int:
        """Most recent timestamp across all streams (0 when none seen)."""
        if not self._last:
            return 0
        return max(self._last.values())

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        """Snapshot the per-stream timestamp map (Checkpointable)."""
        return {"last": dict(self._last)}

    def state_restore(self, state: dict) -> None:
        """Re-apply a dumped timestamp map (Checkpointable)."""
        self._last = dict(state["last"])
