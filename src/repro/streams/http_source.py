"""An HTTP push source: the second transport the paper names (§2.2).

A background :mod:`http.server` accepts ``POST`` requests whose bodies are
newline-delimited records (same codecs as the TCP source); every decoded
record becomes a pending arrival the director pumps at its own pace.
``GET /stats`` exposes a small JSON health document.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..core.actors import SourceActor
from ..core.timekeeper import US_PER_S
from .codecs import JSONLinesCodec


class HTTPStreamSource(SourceActor):
    """Receives push updates over HTTP POST."""

    unbounded = True

    def __init__(
        self,
        name: str,
        host: str = "127.0.0.1",
        port: int = 0,
        codec=None,
        clock=None,
        output: str = "out",
    ):
        super().__init__(name, arrivals=[])
        self.add_output(output)
        self.codec = codec or JSONLinesCodec()
        self.clock = clock
        self._lock = threading.Lock()
        self._host = host
        self._port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self.received = 0
        self.decode_errors = 0
        self.requests = 0

    # ------------------------------------------------------------------
    def listen(self) -> tuple[str, int]:
        source = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # silence the default stderr log
                pass

            def do_POST(self) -> None:
                length = int(self.headers.get("Content-Length", 0))
                body = self.rfile.read(length).decode(
                    "utf-8", errors="replace"
                )
                accepted = source._ingest_body(body)
                payload = json.dumps({"accepted": accepted})
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.end_headers()
                self.wfile.write(payload.encode("utf-8"))

            def do_GET(self) -> None:
                if self.path != "/stats":
                    self.send_response(404)
                    self.end_headers()
                    return
                payload = json.dumps(source.stats())
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.end_headers()
                self.wfile.write(payload.encode("utf-8"))

        self._server = ThreadingHTTPServer((self._host, self._port), Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"http-src-{self.name}",
            daemon=True,
        )
        self._thread.start()
        return self._server.server_address[:2]

    def close(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    # ------------------------------------------------------------------
    def _ingest_body(self, body: str) -> int:
        self.requests += 1
        accepted = 0
        for line in body.splitlines():
            if not line.strip():
                continue
            try:
                payload = self.codec.decode(line)
            except Exception:
                self.decode_errors += 1
                continue
            timestamp = self._now_us()
            with self._lock:
                self._pending.append((timestamp, payload))
                self.received += 1
            accepted += 1
        return accepted

    def _now_us(self) -> int:
        if self.clock is not None:
            return self.clock.now_us
        import time

        return int(time.monotonic() * US_PER_S)

    def stats(self) -> dict:
        with self._lock:
            backlog = len(self._pending) - self._cursor
        return {
            "received": self.received,
            "decode_errors": self.decode_errors,
            "requests": self.requests,
            "backlog": backlog,
        }

    # ------------------------------------------------------------------
    # Thread-safe SourceActor overrides
    # ------------------------------------------------------------------
    def next_arrival_time(self) -> Optional[int]:
        with self._lock:
            if self._cursor >= len(self._pending):
                return None
            return self._pending[self._cursor][0]

    def pending_arrivals(self, now: int) -> int:
        with self._lock:
            count = 0
            index = self._cursor
            while (
                index < len(self._pending)
                and self._pending[index][0] <= now
            ):
                count += 1
                index += 1
            return count

    def pump(self, ctx) -> int:
        emitted = 0
        limit = self.batch_limit
        while True:
            with self._lock:
                if self._cursor >= len(self._pending):
                    break
                timestamp, value = self._pending[self._cursor]
                if timestamp > ctx.now:
                    break
                self._cursor += 1
            self.emit_arrival(ctx, timestamp, value)
            emitted += 1
            if limit is not None and emitted >= limit:
                break
        return emitted
