"""Receiver behaviour: FIFO and windowed."""

import pytest

from repro.core.events import CWEvent
from repro.core.exceptions import ReceiverError
from repro.core.receivers import FIFOReceiver, WindowedReceiver
from repro.core.waves import WaveTag
from repro.core.windows import WindowSpec


def event(value, ts=0):
    event.counter += 1
    return CWEvent(value, ts, WaveTag.root(event.counter))


event.counter = 0


class TestFIFOReceiver:
    def test_fifo_order(self):
        receiver = FIFOReceiver()
        receiver.put(event("a"))
        receiver.put(event("b"))
        assert receiver.get().value == "a"
        assert receiver.get().value == "b"

    def test_empty_get_raises(self):
        with pytest.raises(ReceiverError):
            FIFOReceiver().get()

    def test_has_token_and_size(self):
        receiver = FIFOReceiver()
        assert not receiver.has_token()
        receiver.put(event("a"))
        assert receiver.has_token()
        assert receiver.size() == 1

    def test_peek_does_not_consume(self):
        receiver = FIFOReceiver()
        receiver.put(event("a"))
        assert receiver.peek().value == "a"
        assert receiver.size() == 1

    def test_clear(self):
        receiver = FIFOReceiver()
        receiver.put(event("a"))
        receiver.clear()
        assert not receiver.has_token()


class TestWindowedReceiver:
    def test_put_produces_windows_inline(self):
        receiver = WindowedReceiver(WindowSpec.tokens(2, 2))
        receiver.put(event("a"))
        assert not receiver.has_token()
        receiver.put(event("b"))
        assert receiver.has_token()
        assert receiver.get().values == ["a", "b"]

    def test_get_without_window_raises(self):
        receiver = WindowedReceiver(WindowSpec.tokens(2, 2))
        with pytest.raises(ReceiverError):
            receiver.get()

    def test_expired_events_accessible(self):
        receiver = WindowedReceiver(WindowSpec.tokens(2, 1))
        for name in "abc":
            receiver.put(event(name))
        # [a,b] then [b,c] formed; a then b slid out of scope.
        assert [e.value for e in receiver.drain_expired()] == ["a", "b"]

    def test_pending_events_counts_unwindowed(self):
        receiver = WindowedReceiver(WindowSpec.tokens(3, 1))
        receiver.put(event("a"))
        assert receiver.pending_events() == 1

    def test_force_timeout_returns_count(self):
        receiver = WindowedReceiver(WindowSpec.tokens(5, 1))
        receiver.put(event("a"))
        assert receiver.force_timeout() == 1
        assert receiver.get().forced

    def test_clear_resets_operator(self):
        receiver = WindowedReceiver(WindowSpec.tokens(2, 2))
        receiver.put(event("a"))
        receiver.clear()
        assert receiver.pending_events() == 0
        receiver.put(event("b"))
        assert not receiver.has_token()  # needs two fresh events

    def test_next_deadline_for_time_windows(self):
        receiver = WindowedReceiver(WindowSpec.time(1_000_000))
        receiver.put(event("a", ts=0))
        assert receiver.next_deadline() == 1_000_000
