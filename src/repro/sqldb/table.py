"""Storage: tables, schemas, and hash indexes.

Rows live as plain dicts keyed by column name inside an insertion-ordered
``rowid -> row`` map.  A table may declare a primary key (upserts via
``INSERT OR REPLACE`` need one) and any number of secondary hash indexes;
indexes are maintained incrementally on every mutation and used by the
planner for equality lookups.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional

from .errors import ConstraintError, SchemaError

_COERCERS = {
    "INTEGER": int,
    "FLOAT": float,
    "TEXT": str,
    "BOOLEAN": bool,
}


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    type_name: str  # INTEGER | FLOAT | TEXT | BOOLEAN
    not_null: bool = False

    def coerce(self, value: Any) -> Any:
        if value is None:
            if self.not_null:
                raise ConstraintError(
                    f"column {self.name!r} is NOT NULL"
                )
            return None
        coercer = _COERCERS.get(self.type_name)
        if coercer is None:
            raise SchemaError(f"unknown column type {self.type_name!r}")
        try:
            if self.type_name == "BOOLEAN" and isinstance(value, str):
                return value.strip().lower() in ("1", "true", "t", "yes")
            return coercer(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"cannot store {value!r} in {self.type_name} column "
                f"{self.name!r}"
            ) from exc


class HashIndex:
    """Equality index: column-value tuple -> set of rowids."""

    def __init__(self, name: str, columns: tuple[str, ...]):
        self.name = name
        self.columns = columns
        self._buckets: dict[tuple, set[int]] = {}

    def key_of(self, row: dict[str, Any]) -> tuple:
        return tuple(row[column] for column in self.columns)

    def add(self, rowid: int, row: dict[str, Any]) -> None:
        self._buckets.setdefault(self.key_of(row), set()).add(rowid)

    def remove(self, rowid: int, row: dict[str, Any]) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: tuple) -> set[int]:
        return self._buckets.get(key, set())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class Table:
    """An in-memory heap of rows plus its indexes."""

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        primary_key: tuple[str, ...] = (),
    ):
        self.name = name
        self.columns: dict[str, Column] = {}
        for column in columns:
            if column.name in self.columns:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {name!r}"
                )
            self.columns[column.name] = column
        for key_column in primary_key:
            if key_column not in self.columns:
                raise SchemaError(
                    f"primary key column {key_column!r} not in table {name!r}"
                )
        self.primary_key = primary_key
        self._rows: dict[int, dict[str, Any]] = {}
        self._rowids = itertools.count(1)
        self._pk_index: Optional[HashIndex] = (
            HashIndex(f"pk_{name}", primary_key) if primary_key else None
        )
        self.indexes: dict[str, HashIndex] = {}

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        return list(self.columns.keys())

    def has_column(self, name: str) -> bool:
        return name in self.columns

    def create_index(self, name: str, columns: tuple[str, ...]) -> HashIndex:
        for column in columns:
            if column not in self.columns:
                raise SchemaError(
                    f"cannot index unknown column {column!r} of {self.name!r}"
                )
        if name in self.indexes:
            raise SchemaError(f"index {name!r} already exists")
        index = HashIndex(name, columns)
        for rowid, row in self._rows.items():
            index.add(rowid, row)
        self.indexes[name] = index
        return index

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def scan(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """All (rowid, row) pairs in insertion order."""
        return iter(list(self._rows.items()))

    def rows(self) -> list[dict[str, Any]]:
        return [dict(row) for row in self._rows.values()]

    def get(self, rowid: int) -> Optional[dict[str, Any]]:
        return self._rows.get(rowid)

    def lookup_pk(self, key: tuple) -> Optional[dict[str, Any]]:
        if self._pk_index is None:
            raise SchemaError(f"table {self.name!r} has no primary key")
        rowids = self._pk_index.lookup(key)
        for rowid in rowids:
            return self._rows[rowid]
        return None

    def best_index(self, bound_columns: set[str]) -> Optional[HashIndex]:
        """The most selective index fully covered by *bound_columns*."""
        candidates = []
        if self._pk_index is not None and set(
            self._pk_index.columns
        ) <= bound_columns:
            candidates.append(self._pk_index)
        for index in self.indexes.values():
            if set(index.columns) <= bound_columns:
                candidates.append(index)
        if not candidates:
            return None
        return max(candidates, key=lambda index: len(index.columns))

    def lookup_index(
        self, index: HashIndex, key: tuple
    ) -> Iterator[tuple[int, dict[str, Any]]]:
        for rowid in sorted(index.lookup(key)):
            row = self._rows.get(rowid)
            if row is not None:
                yield rowid, row

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _coerced(self, values: dict[str, Any]) -> dict[str, Any]:
        row: dict[str, Any] = {}
        for name, column in self.columns.items():
            row[name] = column.coerce(values.get(name))
        unknown = set(values) - set(self.columns)
        if unknown:
            raise SchemaError(
                f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
            )
        return row

    def insert(
        self, values: dict[str, Any], or_replace: bool = False
    ) -> int:
        """Insert a row; with *or_replace*, overwrite the PK conflict."""
        row = self._coerced(values)
        if self._pk_index is not None:
            key = tuple(row[column] for column in self.primary_key)
            if any(part is None for part in key):
                raise ConstraintError(
                    f"primary key of {self.name!r} cannot contain NULL"
                )
            existing = self._pk_index.lookup(key)
            if existing:
                if not or_replace:
                    raise ConstraintError(
                        f"duplicate primary key {key!r} in {self.name!r}"
                    )
                for rowid in list(existing):
                    self._delete_rowid(rowid)
        rowid = next(self._rowids)
        self._rows[rowid] = row
        if self._pk_index is not None:
            self._pk_index.add(rowid, row)
        for index in self.indexes.values():
            index.add(rowid, row)
        return rowid

    def _delete_rowid(self, rowid: int) -> None:
        row = self._rows.pop(rowid)
        if self._pk_index is not None:
            self._pk_index.remove(rowid, row)
        for index in self.indexes.values():
            index.remove(rowid, row)

    def delete_rowids(self, rowids: Iterable[int]) -> int:
        count = 0
        for rowid in list(rowids):
            if rowid in self._rows:
                self._delete_rowid(rowid)
                count += 1
        return count

    def update_row(self, rowid: int, changes: dict[str, Any]) -> None:
        old = self._rows[rowid]
        new = dict(old)
        for name, value in changes.items():
            column = self.columns.get(name)
            if column is None:
                raise SchemaError(
                    f"unknown column {name!r} in UPDATE of {self.name!r}"
                )
            new[name] = column.coerce(value)
        if self._pk_index is not None:
            new_key = tuple(new[c] for c in self.primary_key)
            old_key = tuple(old[c] for c in self.primary_key)
            if new_key != old_key:
                conflict = self._pk_index.lookup(new_key)
                if conflict and conflict != {rowid}:
                    raise ConstraintError(
                        f"UPDATE would duplicate primary key {new_key!r}"
                    )
            self._pk_index.remove(rowid, old)
        for index in self.indexes.values():
            index.remove(rowid, old)
        self._rows[rowid] = new
        if self._pk_index is not None:
            self._pk_index.add(rowid, new)
        for index in self.indexes.values():
            index.add(rowid, new)

    def clear(self) -> None:
        self._rows.clear()
        if self._pk_index is not None:
            self._pk_index = HashIndex(f"pk_{self.name}", self.primary_key)
        for name, index in list(self.indexes.items()):
            self.indexes[name] = HashIndex(name, index.columns)

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        """Snapshot rows + rowid counter (Checkpointable protocol).

        Indexes are derived data and are rebuilt on restore rather than
        serialized.  The row dicts are referenced live (not copied): the
        checkpoint orchestrator pickles the aggregate dump synchronously,
        and referencing the same row objects lets pickle's memo
        de-duplicate a database that several actors dump independently.
        """
        return {
            "rows": self._rows,
            "next_rowid": self._rowids.__reduce__()[1][0],
        }

    def state_restore(self, state: dict) -> None:
        """Re-apply dumped rows in place and rebuild every index."""
        self._rows = dict(state["rows"])
        self._rowids = itertools.count(int(state["next_rowid"]))
        if self._pk_index is not None:
            self._pk_index = HashIndex(f"pk_{self.name}", self.primary_key)
        for name, index in list(self.indexes.items()):
            self.indexes[name] = HashIndex(name, index.columns)
        for rowid, row in self._rows.items():
            if self._pk_index is not None:
                self._pk_index.add(rowid, row)
            for index in self.indexes.values():
                index.add(rowid, row)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self._rows)})"
