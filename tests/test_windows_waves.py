"""Wave-based window semantics: synchronizing complete waves."""

from repro.core.events import CWEvent
from repro.core.waves import WaveTag
from repro.core.windows import WindowOperator, WindowSpec


def wave_events(serial, count):
    """A complete wave: *count* children of one root, last one marked."""
    root = WaveTag.root(serial)
    events = [
        CWEvent(f"{serial}.{i}", serial * 100, root.child(i))
        for i in range(1, count + 1)
    ]
    events[-1].last_in_wave = True
    return events


class TestWaveWindows:
    def test_window_produced_when_wave_closes(self):
        op = WindowOperator(WindowSpec.waves(1))
        first, second, third = wave_events(1, 3)
        assert op.put(first) == []
        assert op.put(second) == []
        produced = op.put(third)
        assert len(produced) == 1
        assert produced[0].values == ["1.1", "1.2", "1.3"]

    def test_interleaved_waves_stay_separate(self):
        op = WindowOperator(WindowSpec.waves(1))
        wave_a = wave_events(1, 2)
        wave_b = wave_events(2, 2)
        produced = []
        produced += op.put(wave_a[0])
        produced += op.put(wave_b[0])
        produced += op.put(wave_b[1])  # closes wave 2
        assert len(produced) == 1
        assert produced[0].values == ["2.1", "2.2"]
        produced = op.put(wave_a[1])  # closes wave 1
        assert produced[0].values == ["1.1", "1.2"]

    def test_multi_wave_window(self):
        op = WindowOperator(WindowSpec.waves(2))
        produced = []
        for event in wave_events(1, 2) + wave_events(2, 1):
            produced.extend(op.put(event))
        assert len(produced) == 1
        assert sorted(produced[0].values) == ["1.1", "1.2", "2.1"]

    def test_delete_used_consumes_waves(self):
        op = WindowOperator(WindowSpec.waves(1, delete_used_events=True))
        for event in wave_events(1, 2):
            op.put(event)
        # Wave 1 consumed; feeding wave 2 must not resurface wave 1.
        produced = []
        for event in wave_events(2, 2):
            produced.extend(op.put(event))
        assert len(produced) == 1
        assert produced[0].values == ["2.1", "2.2"]

    def test_unconsumed_waves_expire_on_step(self):
        op = WindowOperator(
            WindowSpec.waves(1, step=1, delete_used_events=False)
        )
        for event in wave_events(1, 2):
            op.put(event)
        assert [e.value for e in op.expired] == ["1.1", "1.2"]

    def test_force_timeout_flushes_open_waves(self):
        op = WindowOperator(WindowSpec.waves(1))
        first, _, _ = wave_events(1, 3)
        op.put(first)
        produced = op.force_timeout()
        assert len(produced) == 1
        assert produced[0].values == ["1.1"]
        assert produced[0].forced
        assert op.pending_count() == 0

    def test_single_event_wave(self):
        # A root external event is its own closed wave.
        op = WindowOperator(WindowSpec.waves(1))
        event = CWEvent("solo", 5, WaveTag.root(9), last_in_wave=True)
        produced = op.put(event)
        assert [w.values for w in produced] == [["solo"]]
