"""Every shipped example must run end to end (subprocess smoke tests).

The examples double as integration tests of the public API surface: each
asserts its own invariants internally and exits non-zero on failure.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_complete():
    # The deliverable set: quickstart + domain scenarios.
    for required in (
        "quickstart.py",
        "supply_chain.py",
        "astroshelf.py",
        "linear_road_demo.py",
        "live_pncwf.py",
        "multi_workflow.py",
    ):
        assert required in ALL_EXAMPLES


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stdout[-2000:]}"
        f"\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script} produced no output"
