"""Key-based shard routing: plans, seeds and the deterministic merge.

Sharded execution partitions a workflow's input stream by a user-chosen
*group-by key* (for Linear Road: the expressway).  Each distinct key
value becomes one **logical shard** — a complete, independent engine
over the key's slice of the stream — and ``--shards N`` only decides how
many worker *processes* those logical shards are multiplexed onto.  The
logical partition therefore never depends on the worker count, which is
what makes the merged output (and chaos-run fault schedules) identical
under any ``N``.

Three concerns live here:

* :class:`ShardPlan` — the assignment of logical shards to workers,
  including the reassignment hook live migration uses;
* :func:`shard_seed` — per-shard RNG seed derivation using the same
  CRC-of-name mixing scheme as
  :class:`~repro.resilience.injection.FaultInjector`, so seeds are
  stable across processes and shard counts (``hash()`` is not);
* :func:`canonical_trace` / :func:`merge_traces` — the canonical sink
  trace (external event timestamp + payload, engine emission times
  excluded) and its deterministic merge, which is bit-identical between
  a single-process run and any sharded run of the same seeded workload.
"""

from __future__ import annotations

import zlib
from dataclasses import astuple, is_dataclass
from typing import Any, Callable, Dict, Hashable, List, Sequence, Tuple

from ..core.exceptions import SimulationError

#: One canonical sink record: (external timestamp, canonical payload).
CanonicalRecord = Tuple[int, Any]


def shard_seed(base_seed: int, shard_name: str) -> int:
    """Mix *shard_name* into *base_seed* with the FaultInjector scheme.

    ``(base << 32) ^ crc32(name)`` — the same construction
    :class:`~repro.resilience.injection.FaultInjector` uses to derive
    per-actor RNG streams.  CRC32 is stable across interpreter runs and
    processes (unlike ``hash``), so every logical shard draws the same
    jitter/fault stream no matter which worker hosts it or how many
    workers exist.
    """
    return (int(base_seed) << 32) ^ zlib.crc32(
        shard_name.encode("utf-8")
    )


def shard_salt(shard_name: str) -> int:
    """CRC32 salt for per-shard fault-injection streams.

    Passed to :func:`repro.resilience.install_faults` so each logical
    shard's injectors draw an independent — but placement-independent —
    failure schedule.
    """
    return zlib.crc32(shard_name.encode("utf-8"))


class ShardPlan:
    """Assignment of logical shards (key values) to worker processes.

    The *groups* are the sorted distinct values of the shard key; the
    initial placement is round-robin by group index.  :meth:`move`
    reassigns one group — the bookkeeping half of live shard migration.
    """

    def __init__(self, groups: Sequence[Hashable], workers: int):
        if workers < 1:
            raise SimulationError("a shard plan needs >= 1 worker")
        if not groups:
            raise SimulationError(
                "a shard plan needs at least one shard key group"
            )
        #: Sorted distinct key values; index == logical shard id.
        self.groups: tuple = tuple(sorted(set(groups)))
        #: Number of worker processes the groups are multiplexed onto.
        self.workers = min(workers, len(self.groups))
        self._assignment: Dict[Hashable, int] = {
            group: index % self.workers
            for index, group in enumerate(self.groups)
        }

    def worker_of(self, group: Hashable) -> int:
        """The worker currently hosting *group* (raises on unknown key)."""
        try:
            return self._assignment[group]
        except KeyError:
            raise SimulationError(
                f"shard key group {group!r} is not in the plan "
                f"(groups: {list(self.groups)})"
            ) from None

    def groups_of(self, worker: int) -> tuple:
        """The logical shards currently hosted by *worker*, sorted."""
        return tuple(
            group
            for group in self.groups
            if self._assignment[group] == worker
        )

    def move(self, group: Hashable, to_worker: int) -> int:
        """Reassign *group* to *to_worker*; returns the previous worker."""
        if not 0 <= to_worker < self.workers:
            raise SimulationError(
                f"cannot move shard {group!r} to worker {to_worker}: "
                f"the plan has workers 0..{self.workers - 1}"
            )
        previous = self.worker_of(group)
        self._assignment[group] = to_worker
        return previous

    def assignment(self) -> Dict[Hashable, int]:
        """A copy of the current group -> worker mapping."""
        return dict(self._assignment)

    def __repr__(self) -> str:
        return (
            f"ShardPlan(groups={list(self.groups)}, "
            f"workers={self.workers}, assignment={self._assignment})"
        )


def partition_arrivals(
    arrivals: Sequence[Tuple[int, Any]],
    key_fn: Callable[[Any], Hashable],
) -> Dict[Hashable, List[Tuple[int, Any]]]:
    """Split an arrival schedule into per-group slices, order preserved.

    Filtering the *global* schedule (rather than regenerating per shard)
    keeps each report's arrival timestamp — which encodes its global
    index — byte-identical to the single-process run.
    """
    slices: Dict[Hashable, List[Tuple[int, Any]]] = {}
    for pair in arrivals:
        slices.setdefault(key_fn(pair[1]), []).append(pair)
    return slices


def _canonical_payload(item: Any) -> Any:
    """A comparable, picklable image of one sink item's payload."""
    value = getattr(item, "value", item)
    if is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + astuple(value)
    if hasattr(value, "values"):
        return tuple(value.values)
    return value


def canonical_trace(sink: Any) -> List[CanonicalRecord]:
    """The canonical output trace of one sink actor.

    Each record is ``(external_timestamp_us, canonical_payload)``.  The
    engine emission time is deliberately excluded: per-worker virtual
    clocks advance with per-shard work, so emission times differ between
    a sharded and a single-process run even when the computed outputs
    are identical — the canonical trace captures exactly the part that
    must match.
    """
    records: List[CanonicalRecord] = []
    for _, item in sink.items:
        timestamp = getattr(item, "timestamp", None)
        records.append(
            (0 if timestamp is None else int(timestamp),
             _canonical_payload(item))
        )
    return records


def _merge_key(record: CanonicalRecord) -> Tuple[int, str]:
    """Total order for canonical records: timestamp, then payload repr."""
    return (record[0], repr(record[1]))


def merge_traces(
    traces: Sequence[List[CanonicalRecord]],
) -> List[CanonicalRecord]:
    """Deterministically merge per-shard canonical traces into one.

    A stable sort on ``(external timestamp, payload)`` — both fields are
    derived purely from event content, so the merged trace of N shards
    is bit-identical to the (identically sorted) trace of a
    single-process run, whatever order the shards' engines emitted in.
    """
    merged: List[CanonicalRecord] = []
    for trace in traces:
        merged.extend(trace)
    merged.sort(key=_merge_key)
    return merged


def canonical_run_traces(system: Any) -> Dict[str, List[CanonicalRecord]]:
    """Canonical toll + accident traces of one Linear Road system."""
    return {
        "toll": sorted(
            canonical_trace(system.toll_out), key=_merge_key
        ),
        "accident": sorted(
            canonical_trace(system.accident_out), key=_merge_key
        ),
    }
