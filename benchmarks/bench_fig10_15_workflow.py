"""Figures 10-15: the Linear Road workflow structure.

The paper's figures show the top-level workflow (Figure 10) and the
sub-workflows for stopped-car detection, accident detection/notification,
per-car averages and car counts (Figures 11-15).  This bench builds both
the flat and the hierarchical (composite sub-workflow) variants, prints the
wiring, and asserts the structure matches Appendix A.
"""

from repro.core.actors import CompositeActor
from repro.core.windows import Measure
from repro.linearroad import build_linear_road, LinearRoadWorkload, WorkloadConfig


def build_both():
    arrivals = LinearRoadWorkload(
        WorkloadConfig(duration_s=1, peak_rate=1)
    ).arrivals()
    return (
        build_linear_road(arrivals),
        build_linear_road(arrivals, hierarchical=True),
    )


def describe(system):
    lines = []
    for channel in system.workflow.channels:
        lines.append(
            f"  {channel.source.full_name} -> {channel.sink.full_name}"
        )
    return "\n".join(sorted(lines))


def test_fig10_15_workflow_structure(once):
    flat, hierarchical = once(build_both)
    print()
    print("Figure 10: Linear Road top-level workflow (channels)")
    print(describe(flat))
    print()
    print("Figures 11-15: hierarchical variant (composite sub-workflows)")
    for actor in hierarchical.workflow.actors.values():
        if isinstance(actor, CompositeActor):
            inner = ", ".join(actor.subworkflow.actors)
            director = type(actor.director).model_name
            print(f"  {actor.name}: [{inner}] under {director}")

    workflow = flat.workflow
    # Three areas fan out of the single position-report feed (Figure 10).
    source_out = workflow.actors["CarPositionReports"].output("reports")
    destinations = {port.actor.name for port in source_out.destinations}
    assert destinations == {
        "StoppedCarDetector",
        "AccidentNotification",
        "Avgsv",
        "cars",
        "SegmentCrossing",
    }

    # Window semantics of Appendix A.
    specs = {
        "StoppedCarDetector": (4, 1, Measure.TOKENS),
        "AccidentDetector": (2, 1, Measure.TOKENS),
        "SegmentCrossing": (2, 1, Measure.TOKENS),
        "Avgsv": (60_000_000, 60_000_000, Measure.TIME),
        "Avgs": (60_000_000, 60_000_000, Measure.TIME),
        "cars": (60_000_000, 60_000_000, Measure.TIME),
    }
    for name, (size, step, measure) in specs.items():
        window = workflow.actors[name].input("in").window
        assert (window.size, window.step, window.measure) == (
            size,
            step,
            measure,
        ), name

    # The hierarchical variant exposes two composite sub-workflows.
    composites = [
        actor
        for actor in hierarchical.workflow.actors.values()
        if isinstance(actor, CompositeActor)
    ]
    assert {c.name for c in composites} == {"StoppedCarDetector", "Avgsv"}
    directors = {type(c.director).model_name for c in composites}
    assert directors == {"DDF", "SDF"}
