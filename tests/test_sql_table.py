"""Storage layer: tables, coercion, primary keys, hash indexes."""

import pytest

from repro.sqldb.errors import ConstraintError, SchemaError
from repro.sqldb.table import Column, HashIndex, Table


def make_table():
    return Table(
        "stats",
        [
            Column("xway", "INTEGER"),
            Column("seg", "INTEGER"),
            Column("lav", "FLOAT"),
        ],
        primary_key=("xway", "seg"),
    )


class TestSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", "INTEGER"), Column("a", "TEXT")])

    def test_pk_column_must_exist(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", "INTEGER")], primary_key=("b",))

    def test_coercion_per_type(self):
        assert Column("a", "INTEGER").coerce("42") == 42
        assert Column("a", "FLOAT").coerce(1) == 1.0
        assert Column("a", "TEXT").coerce(5) == "5"
        assert Column("a", "BOOLEAN").coerce("true") is True
        assert Column("a", "BOOLEAN").coerce("no") is False

    def test_not_null_enforced(self):
        with pytest.raises(ConstraintError):
            Column("a", "INTEGER", not_null=True).coerce(None)

    def test_bad_value_rejected(self):
        with pytest.raises(SchemaError):
            Column("a", "INTEGER").coerce("not-a-number")


class TestMutation:
    def test_insert_and_scan(self):
        table = make_table()
        table.insert({"xway": 0, "seg": 1, "lav": 40.0})
        assert len(table) == 1
        assert table.rows()[0]["lav"] == 40.0

    def test_missing_columns_become_null(self):
        table = make_table()
        table.insert({"xway": 0, "seg": 1})
        assert table.rows()[0]["lav"] is None

    def test_unknown_column_rejected(self):
        table = make_table()
        with pytest.raises(SchemaError):
            table.insert({"xway": 0, "seg": 1, "bogus": 1})

    def test_duplicate_pk_rejected(self):
        table = make_table()
        table.insert({"xway": 0, "seg": 1})
        with pytest.raises(ConstraintError):
            table.insert({"xway": 0, "seg": 1})

    def test_or_replace_upserts(self):
        table = make_table()
        table.insert({"xway": 0, "seg": 1, "lav": 10.0})
        table.insert({"xway": 0, "seg": 1, "lav": 99.0}, or_replace=True)
        assert len(table) == 1
        assert table.lookup_pk((0, 1))["lav"] == 99.0

    def test_null_pk_rejected(self):
        table = make_table()
        with pytest.raises(ConstraintError):
            table.insert({"xway": None, "seg": 1})

    def test_delete_rowids(self):
        table = make_table()
        rowid = table.insert({"xway": 0, "seg": 1})
        assert table.delete_rowids([rowid, 999]) == 1
        assert len(table) == 0
        assert table.lookup_pk((0, 1)) is None

    def test_update_row_maintains_pk_index(self):
        table = make_table()
        rowid = table.insert({"xway": 0, "seg": 1, "lav": 1.0})
        table.update_row(rowid, {"seg": 2})
        assert table.lookup_pk((0, 1)) is None
        assert table.lookup_pk((0, 2))["lav"] == 1.0

    def test_update_into_pk_conflict_rejected(self):
        table = make_table()
        table.insert({"xway": 0, "seg": 1})
        rowid = table.insert({"xway": 0, "seg": 2})
        with pytest.raises(ConstraintError):
            table.update_row(rowid, {"seg": 1})

    def test_clear_resets_rows_and_indexes(self):
        table = make_table()
        table.create_index("by_seg", ("seg",))
        table.insert({"xway": 0, "seg": 1})
        table.clear()
        assert len(table) == 0
        assert not table.indexes["by_seg"].lookup((1,))


class TestIndexes:
    def test_secondary_index_backfilled(self):
        table = make_table()
        table.insert({"xway": 0, "seg": 1})
        table.insert({"xway": 0, "seg": 2})
        index = table.create_index("by_xway", ("xway",))
        assert len(index.lookup((0,))) == 2

    def test_index_maintained_on_insert_delete(self):
        table = make_table()
        index = table.create_index("by_seg", ("seg",))
        rowid = table.insert({"xway": 0, "seg": 7})
        assert index.lookup((7,)) == {rowid}
        table.delete_rowids([rowid])
        assert index.lookup((7,)) == set()

    def test_duplicate_index_name_rejected(self):
        table = make_table()
        table.create_index("i", ("seg",))
        with pytest.raises(SchemaError):
            table.create_index("i", ("xway",))

    def test_index_on_unknown_column_rejected(self):
        table = make_table()
        with pytest.raises(SchemaError):
            table.create_index("i", ("bogus",))

    def test_best_index_prefers_most_columns(self):
        table = make_table()
        table.create_index("by_seg", ("seg",))
        best = table.best_index({"xway", "seg"})
        assert best.columns == ("xway", "seg")  # the PK index wins

    def test_best_index_requires_full_cover(self):
        table = make_table()
        assert table.best_index({"xway"}) is None  # PK needs xway AND seg

    def test_lookup_index_skips_dead_rowids(self):
        table = make_table()
        index = table.create_index("by_seg", ("seg",))
        rowid = table.insert({"xway": 0, "seg": 3})
        rows = list(table.lookup_index(index, (3,)))
        assert rows[0][0] == rowid
