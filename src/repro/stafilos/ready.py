"""Per-actor ready queues: the event staging area inside the scheduler.

The abstract scheduler "maintains a list of the workflow's actors, and maps
them to queues of events (sorted by timestamp) that should be propagated to
each actor's corresponding input ports when they are to be scheduled for
execution."  A :class:`ReadyItem` remembers which input port the window or
event belongs to so the director can stage it correctly.

Ready queues sit on the per-event enqueue path, so they stay lean: the
sort key is read straight off the item (windows and events expose the same
``timestamp`` attribute — no type dispatch needed), and an optional
``on_size_change`` listener lets the owning scheduler keep O(1) aggregate
backlog counters instead of re-summing every queue.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

_TIEBREAK = itertools.count()

#: Listener signature: ``(old_len, new_len)`` after a push/pop/clear.
SizeListener = Callable[[int, int], None]


@dataclass(order=True)
class ReadyItem:
    """One schedulable unit of work for an actor: (port, window-or-event)."""

    sort_key: tuple[int, int] = field(init=False)
    port_name: str = field(compare=False)
    item: Any = field(compare=False)

    def __post_init__(self) -> None:
        # Windows and events both carry a ``timestamp`` attribute; read it
        # once (this runs on every enqueue).
        self.sort_key = (self.item.timestamp, next(_TIEBREAK))

    @property
    def timestamp(self) -> int:
        return self.sort_key[0]


class ReadyQueue:
    """A timestamp-ordered queue of :class:`ReadyItem` for one actor."""

    __slots__ = ("_heap", "_on_size_change")

    def __init__(self, on_size_change: Optional[SizeListener] = None):
        self._heap: list[ReadyItem] = []
        self._on_size_change = on_size_change

    def push(self, port_name: str, item: Any) -> ReadyItem:
        ready = ReadyItem(port_name, item)
        heapq.heappush(self._heap, ready)
        if self._on_size_change is not None:
            size = len(self._heap)
            self._on_size_change(size - 1, size)
        return ready

    def pop(self) -> Optional[ReadyItem]:
        if not self._heap:
            return None
        item = heapq.heappop(self._heap)
        if self._on_size_change is not None:
            size = len(self._heap)
            self._on_size_change(size + 1, size)
        return item

    def peek(self) -> Optional[ReadyItem]:
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def clear(self) -> None:
        size = len(self._heap)
        self._heap.clear()
        if size and self._on_size_change is not None:
            self._on_size_change(size, 0)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def snapshot_items(self) -> list[ReadyItem]:
        """A copy of the heap list, in heap order (pure observation).

        :class:`ReadyItem` pickles with its ``sort_key`` intact (pickle
        bypasses ``__post_init__``), so the global tie-break counter is
        not consumed when a snapshot round-trips.
        """
        return list(self._heap)

    def restore_items(self, items: list[ReadyItem]) -> None:
        """Replace the heap content, keeping the size listener honest.

        The input must already be in heap order — :meth:`snapshot_items`
        output qualifies.  Fires ``on_size_change`` with the real
        transition so the scheduler's O(1) backlog counters stay exact.
        """
        old = len(self._heap)
        self._heap = list(items)
        if self._on_size_change is not None and old != len(self._heap):
            self._on_size_change(old, len(self._heap))
