"""Abstract syntax tree for the SQL subset.

Every node is a frozen dataclass; the evaluator in
:mod:`repro.sqldb.expressions` and the executor in
:mod:`repro.sqldb.planner` dispatch on these types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence


class Expression:
    """Marker base class for expression nodes."""


@dataclass(frozen=True)
class Literal(Expression):
    value: Any


@dataclass(frozen=True)
class ColumnRef(Expression):
    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Param(Expression):
    name: str


@dataclass(frozen=True)
class Unary(Expression):
    op: str  # "NOT" | "-" | "+"
    operand: Expression


@dataclass(frozen=True)
class Binary(Expression):
    op: str  # arithmetic / comparison / AND / OR / "||"
    left: Expression
    right: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: str  # upper-cased
    args: tuple[Expression, ...]
    star: bool = False  # COUNT(*)
    distinct: bool = False


@dataclass(frozen=True)
class Case(Expression):
    whens: tuple[tuple[Expression, Expression], ...]
    else_result: Optional[Expression]
    operand: Optional[Expression] = None  # CASE <operand> WHEN ... form


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    select: "Select"


@dataclass(frozen=True)
class ExistsSubquery(Expression):
    select: "Select"
    negated: bool = False


@dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expression):
    operand: Expression
    select: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class Like(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class Statement:
    """Marker base class for statement nodes."""


@dataclass(frozen=True)
class SelectItem:
    expression: Optional[Expression]  # None means bare "*"
    alias: Optional[str] = None
    table_star: Optional[str] = None  # "t.*"


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    """One join step: ``<kind> JOIN table [ON condition]``."""

    table: TableRef
    condition: Optional[Expression] = None
    kind: str = "INNER"  # INNER | LEFT | CROSS


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class Select(Statement):
    items: tuple[SelectItem, ...]
    table: Optional[TableRef]
    joins: tuple["Join", ...] = ()
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None
    distinct: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expression, ...], ...]
    or_replace: bool = False


@dataclass(frozen=True)
class Assignment:
    column: str
    value: Expression


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: tuple[Assignment, ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str  # normalized: INTEGER | FLOAT | TEXT | BOOLEAN
    not_null: bool = False


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: tuple[str, ...] = ()
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class CreateIndex(Statement):
    name: str
    table: str
    columns: tuple[str, ...]
