"""Per-source watermark generators.

A watermark generator turns what a source knows about its own stream
into :class:`~repro.core.punctuation.Watermark` bounds:

* :class:`BoundedDisorderWatermarks` — the source promises that arrival
  disorder is bounded by ``disorder_us``: once an event with timestamp
  ``t`` has been *delivered* (entered the source's reorder buffer),
  nothing older than ``t - disorder_us`` can still show up, so the
  watermark trails the newest delivered timestamp by the bound.
* :class:`ExplicitWatermarks` — the stream itself carries progress
  assertions (a replayed log with embedded punctuations, a test
  harness); the generator just enforces monotonicity.

Both expose ``current()`` returning the event-time bound in
microseconds, or ``None`` while nothing is known yet.
"""

from __future__ import annotations

from typing import Optional

from ..core.punctuation import Watermark

__all__ = ["BoundedDisorderWatermarks", "ExplicitWatermarks", "Watermark"]


class BoundedDisorderWatermarks:
    """Watermarks for a source with a hard disorder bound."""

    def __init__(self, disorder_us: int):
        if disorder_us < 0:
            raise ValueError("the disorder bound cannot be negative")
        self.disorder_us = disorder_us
        self.max_seen_us = -1

    def observe(self, event_ts_us: int) -> None:
        """Note a delivered event timestamp (any order)."""
        if event_ts_us > self.max_seen_us:
            self.max_seen_us = event_ts_us

    def current(self) -> Optional[int]:
        if self.max_seen_us < 0:
            return None
        return max(0, self.max_seen_us - self.disorder_us)

    def current_mark(self) -> Optional[Watermark]:
        bound = self.current()
        return None if bound is None else Watermark(bound)

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        return {"max_seen_us": self.max_seen_us}

    def state_restore(self, state: dict) -> None:
        self.max_seen_us = state["max_seen_us"]


class ExplicitWatermarks:
    """Watermarks asserted by the stream (or the test) itself."""

    def __init__(self):
        self.mark_us = -1

    def advance_to(self, up_to_us: int) -> None:
        if up_to_us < self.mark_us:
            raise ValueError(
                f"watermarks must be monotone: {up_to_us} < {self.mark_us}"
            )
        self.mark_us = up_to_us

    def current(self) -> Optional[int]:
        return None if self.mark_us < 0 else self.mark_us

    def current_mark(self) -> Optional[Watermark]:
        bound = self.current()
        return None if bound is None else Watermark(bound)

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        return {"mark_us": self.mark_us}

    def state_restore(self, state: dict) -> None:
        self.mark_us = state["mark_us"]
