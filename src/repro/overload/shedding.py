"""Backlog-bounded shedding mechanics (the drop engine of the package).

The paper's §4.3 points at load shedding (DILoS / self-managing shedding,
its refs [26, 27]) as the way to satisfy SLAs under overload: when the
offered load exceeds capacity, drop work *early and deliberately* instead
of letting every queue grow without bound.

:class:`BacklogShedder` is the mechanism layer: it plugs into any
STAFiLOS scheduler's ``shedder`` slot and enforces a bound on the total
ready backlog by discarding items from the most backlogged low-priority
actors, plus an optional input-side bound at the sources.  Two strategies:

``drop-oldest``
    discard the stalest ready item (its response time is already doomed);
``drop-newest``
    discard the incoming end (keeps in-flight work's latency intact).

Actors with designer priority <= ``protect_priority`` are exempt, so the
workflow's output path keeps its QoS while best-effort maintenance work is
shed first.

The *policy* layer lives above: either the deprecated static alias
(:class:`repro.stafilos.shedding.LoadShedder`) or the closed-loop
:class:`~repro.overload.controller.OverloadController`, which retunes the
bounds here from observed latency.  Trace emission goes through the
public :func:`repro.observability.tracer.current_tracer` hook, so custom
tracer installs see every drop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..core.exceptions import SchedulerError
from ..observability import tracer as _obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..stafilos.abstract_scheduler import AbstractScheduler


@dataclass
class BacklogShedder:
    """Backlog-bounded shedding mechanism (strategy + counters)."""

    max_total_backlog: int
    strategy: str = "drop-oldest"
    #: Actors at or below this priority never lose events.
    protect_priority: int = 5
    #: When set, sources also shed: due-but-unpumped arrivals beyond this
    #: bound are discarded (input-side shedding, as in DSMS shedders).
    max_source_pending: Optional[int] = None
    dropped: int = 0
    dropped_at_sources: int = 0
    dropped_by_actor: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_total_backlog <= 0:
            raise SchedulerError("max_total_backlog must be positive")
        if self.strategy not in ("drop-oldest", "drop-newest"):
            raise SchedulerError(f"unknown strategy {self.strategy!r}")

    # ------------------------------------------------------------------
    def enforce(self, scheduler: "AbstractScheduler") -> int:
        """Shed until the total backlog is within bound; returns drops."""
        drops = 0
        while scheduler.total_backlog() > self.max_total_backlog:
            victim = self._pick_victim(scheduler)
            if victim is None:
                break  # everything left is protected
            self._drop_one(scheduler, victim)
            drops += 1
        return drops

    def shed_sources(self, scheduler: "AbstractScheduler", now: int) -> int:
        """Apply input-side shedding at every registered source."""
        if self.max_source_pending is None:
            return 0
        drops = 0
        for source in scheduler.sources:
            drops += source.shed_due(now, self.max_source_pending)
        self.dropped_at_sources += drops
        if drops:
            if _obs.ENABLED:
                _obs.current_tracer().instant(
                    "shed.sources", now, dropped=drops
                )
        return drops

    def _pick_victim(self, scheduler: "AbstractScheduler") -> Optional[str]:
        """The most backlogged sheddable actor's name."""
        worst_name = None
        worst_backlog = 0
        for actor in scheduler.actors:
            if actor.priority <= self.protect_priority:
                continue
            backlog = len(scheduler.ready[actor.name])
            if backlog > worst_backlog:
                worst_backlog = backlog
                worst_name = actor.name
        return worst_name

    def _drop_one(self, scheduler: "AbstractScheduler", name: str) -> None:
        queue = scheduler.ready[name]
        if self.strategy == "drop-oldest":
            queue.pop()
        else:
            # Drop the newest: rebuild without the max-key item.  Ready
            # queues are small heaps; this stays O(n).
            items = []
            while queue:
                items.append(queue.pop())
            if items:
                items.pop()  # the newest (pops were oldest-first)
            for item in items:
                queue.push(item.port_name, item.item)
        self.dropped += 1
        self.dropped_by_actor[name] = self.dropped_by_actor.get(name, 0) + 1
        actor = next(a for a in scheduler.actors if a.name == name)
        scheduler.invalidate_state(actor)
        if _obs.ENABLED:
            _obs.current_tracer().instant(
                "shed.drop",
                scheduler._now,
                name,
                strategy=self.strategy,
                backlog=scheduler.total_backlog(),
            )
