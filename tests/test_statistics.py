"""Actor statistics and the Rate-Based global metrics."""

import pytest

from repro.core.actors import Actor, SinkActor, SourceActor
from repro.core.statistics import (
    ActorStats,
    global_rate_metrics,
    rate_priorities,
    StatisticsRegistry,
)
from repro.core.workflow import Workflow


class Pass(Actor):
    def __init__(self, name):
        super().__init__(name)
        self.add_input("in")
        self.add_output("out")

    def fire(self, ctx):
        pass


class TestActorStats:
    def test_invocation_accounting(self):
        stats = ActorStats()
        stats.record_invocation(100)
        stats.record_invocation(300)
        assert stats.invocations == 2
        assert stats.avg_cost_us == 200

    def test_ewma_initialized_then_smoothed(self):
        stats = ActorStats()
        stats.record_invocation(100)
        assert stats.ewma_cost_us == 100
        stats.record_invocation(200)
        assert 100 < stats.ewma_cost_us < 200

    def test_selectivity_defaults_to_one(self):
        assert ActorStats().selectivity == 1.0

    def test_selectivity_ratio(self):
        stats = ActorStats()
        stats.record_input(4, 0)
        stats.record_output(2, 0)
        assert stats.selectivity == 0.5

    def test_rates_over_horizon(self):
        stats = ActorStats()
        for t in range(10):
            stats.record_input(1, t * 1_000_000)
        rate = stats.input_rate_per_s(10_000_000)
        assert rate == pytest.approx(1.0, rel=0.2)

    def test_old_samples_age_out(self):
        stats = ActorStats()
        stats.record_input(100, 0)
        assert stats.input_rate_per_s(60_000_000) == 0.0


class TestRateWindowRoundTrip:
    """The rate deques must survive ``state_dump``/``state_restore``
    mid-window: a restored run's ``input_rate``/``output_rate``/
    ``selectivity`` must equal the uninterrupted run's at every
    subsequent instant."""

    def _populated(self):
        from repro.core.statistics import RATE_HORIZON_US

        stats = ActorStats()
        for t in range(0, 8_000_000, 500_000):
            stats.record_input(2, t)
            stats.record_output(1, t)
        return stats, RATE_HORIZON_US

    def test_rates_identical_before_and_after_restore(self):
        stats, _ = self._populated()
        restored = ActorStats()
        restored.state_restore(stats.state_dump())
        for now in (8_000_000, 9_500_000, 12_000_000, 30_000_000):
            assert restored.input_rate_per_s(now) == stats.input_rate_per_s(
                now
            )
            assert restored.output_rate_per_s(
                now
            ) == stats.output_rate_per_s(now)
        assert restored.selectivity == stats.selectivity

    def test_dump_is_a_pure_observation(self):
        """Dumping must not trim the windows (a checkpointed run must
        stay bit-identical to an uninterrupted one)."""
        stats, _ = self._populated()
        before = stats.state_dump()
        after = stats.state_dump()
        assert before == after
        assert before["input_times"]  # deque content captured verbatim

    def test_sample_exactly_at_horizon_survives(self):
        """Boundary: ``_trim`` evicts strictly-older samples only — a
        sample sitting exactly at ``now - RATE_HORIZON_US`` is kept,
        both live and across a restore."""
        stats, horizon = self._populated()
        restored = ActorStats()
        restored.state_restore(stats.state_dump())
        # The oldest recorded sample is at t=0: probe at exactly
        # t=horizon (sample at the boundary, kept) and one past it
        # (sample strictly older, evicted).
        at_boundary = stats.input_rate_per_s(horizon)
        assert restored.input_rate_per_s(horizon) == at_boundary
        assert at_boundary > 0.0
        past = stats.input_rate_per_s(horizon + 500_000)
        assert restored.input_rate_per_s(horizon + 500_000) == past
        assert past < at_boundary


class TestRegistry:
    def test_register_is_idempotent(self):
        registry = StatisticsRegistry()
        actor = Pass("a")
        first = registry.register(actor)
        assert registry.register(actor) is first

    def test_snapshot_shape(self):
        registry = StatisticsRegistry()
        actor = Pass("a")
        registry.record_invocation(actor, 10)
        snap = registry.snapshot()
        assert snap["a"]["invocations"] == 1


def chain_workflow():
    """src -> a -> b -> sink, with a fan-out a -> c -> sink2."""
    wf = Workflow("w")
    src = SourceActor("src")
    src.add_output("out")
    a, b, c = Pass("a"), Pass("b"), Pass("c")
    sink, sink2 = SinkActor("sink"), SinkActor("sink2")
    wf.add_all([src, a, b, c, sink, sink2])
    wf.connect(src, a)
    wf.connect(a, b)
    wf.connect(b, sink)
    wf.connect(a.output("out"), c.input("in"))
    wf.connect(c, sink2)
    return wf


class TestGlobalRateMetrics:
    def test_terminal_actor_uses_local_metrics(self):
        wf = chain_workflow()
        registry = StatisticsRegistry()
        metrics = global_rate_metrics(wf, registry, default_cost_us=100)
        gs, gc = metrics["sink"]
        assert gs == 1.0
        assert gc == 100

    def test_chain_aggregation(self):
        wf = chain_workflow()
        registry = StatisticsRegistry()
        # b: selectivity 0.5, cost 200; sink default cost 100.
        b_stats = registry.register(wf.actors["b"])
        b_stats.record_input(10, 0)
        b_stats.record_output(5, 0)
        b_stats.record_invocation(200)
        metrics = global_rate_metrics(wf, registry, default_cost_us=100)
        gs_b, gc_b = metrics["b"]
        assert gs_b == pytest.approx(0.5)  # 0.5 * GS(sink)=1
        assert gc_b == pytest.approx(200 + 0.5 * 100)

    def test_shared_actor_sums_paths(self):
        wf = chain_workflow()
        registry = StatisticsRegistry()
        metrics = global_rate_metrics(wf, registry, default_cost_us=100)
        gs_a, gc_a = metrics["a"]
        # a has two downstream paths (b->sink and c->sink2), summed.
        gs_b, gc_b = metrics["b"]
        gs_c, gc_c = metrics["c"]
        assert gs_a == pytest.approx(1.0 * (gs_b + gs_c))
        assert gc_a == pytest.approx(100 + 1.0 * (gc_b + gc_c))

    def test_priorities_are_gs_over_gc(self):
        wf = chain_workflow()
        registry = StatisticsRegistry()
        metrics = global_rate_metrics(wf, registry, default_cost_us=100)
        priorities = rate_priorities(wf, registry, default_cost_us=100)
        for name, (gs, gc) in metrics.items():
            assert priorities[name] == pytest.approx(gs / gc)

    def test_cyclic_workflow_falls_back_to_local(self):
        wf = Workflow("loop")
        a, b = Pass("a"), Pass("b")
        wf.add_all([a, b])
        wf.connect(a, b)
        wf.connect(b, a)
        registry = StatisticsRegistry()
        metrics = global_rate_metrics(wf, registry, default_cost_us=50)
        assert metrics["a"] == (1.0, 50)
