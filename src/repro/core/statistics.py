"""Runtime actor statistics — the feed for QoS-aware schedulers.

STAFiLOS exposes runtime statistics to the abstract scheduler: the cost of
each actor (time per invocation), actor input and output rates, and the
derived selectivity.  These are updated on every invocation and consumed by
policies such as the Rate-Based scheduler, which needs *global* (downstream
path-aggregated) selectivity and cost in the style of Sharaf et al.'s
Highest Rate scheduler.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .actors import Actor
    from .workflow import Workflow

#: Horizon (µs) over which input/output rates are measured.
RATE_HORIZON_US = 10_000_000
#: Smoothing factor of the exponentially weighted per-invocation cost.
EWMA_ALPHA = 0.2


class ActorStats:
    """Online statistics for one actor."""

    __slots__ = (
        "invocations",
        "total_cost_us",
        "ewma_cost_us",
        "inputs_total",
        "outputs_total",
        "failures",
        "retries",
        "dead_letters",
        "_input_times",
        "_output_times",
        "_input_window",
        "_output_window",
    )

    def __init__(self):
        self.invocations = 0
        self.total_cost_us = 0
        self.ewma_cost_us: Optional[float] = None
        self.inputs_total = 0
        self.outputs_total = 0
        #: Failed firing attempts (each raise, including retried attempts).
        self.failures = 0
        #: Retries granted by the fault policy.
        self.retries = 0
        #: Items captured in the dead-letter queue for this actor.
        self.dead_letters = 0
        #: Rate windows hold ``(timestamp_us, count)`` pairs — one entry
        #: per recording call, *not* one per token, so a batch of 10 000
        #: tokens costs a single append.  The running in-horizon token
        #: totals live in ``_input_window``/``_output_window``.
        self._input_times: deque[tuple[int, int]] = deque()
        self._output_times: deque[tuple[int, int]] = deque()
        self._input_window = 0
        self._output_window = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_invocation(self, cost_us: int) -> None:
        self.invocations += 1
        self.total_cost_us += cost_us
        if self.ewma_cost_us is None:
            self.ewma_cost_us = float(cost_us)
        else:
            self.ewma_cost_us += EWMA_ALPHA * (cost_us - self.ewma_cost_us)

    def record_input(self, count: int, now_us: int) -> None:
        if count <= 0:
            return
        self.inputs_total += count
        self._input_times.append((now_us, count))
        self._input_window += count
        self._input_window -= self._trim(self._input_times, now_us)

    def record_output(self, count: int, now_us: int) -> None:
        if count <= 0:
            return
        self.outputs_total += count
        self._output_times.append((now_us, count))
        self._output_window += count
        self._output_window -= self._trim(self._output_times, now_us)

    def record_failure(self) -> None:
        """Count one failed firing attempt (the firing raised)."""
        self.failures += 1

    def record_retry(self) -> None:
        """Count one policy-granted retry of a failed firing."""
        self.retries += 1

    def record_dead_letter(self) -> None:
        """Count one item captured in the dead-letter queue."""
        self.dead_letters += 1

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        """Snapshot every statistics field (Checkpointable protocol).

        Copies the rate deques instead of calling the rate accessors —
        those *trim* their windows, and a checkpoint must be a pure
        observation so a checkpointed run stays bit-identical to an
        uninterrupted one.
        """
        return {
            "invocations": self.invocations,
            "total_cost_us": self.total_cost_us,
            "ewma_cost_us": self.ewma_cost_us,
            "inputs_total": self.inputs_total,
            "outputs_total": self.outputs_total,
            "failures": self.failures,
            "retries": self.retries,
            "dead_letters": self.dead_letters,
            "input_times": list(self._input_times),
            "output_times": list(self._output_times),
            "input_window": self._input_window,
            "output_window": self._output_window,
        }

    def state_restore(self, state: dict) -> None:
        """Re-apply a dumped statistics record (Checkpointable protocol)."""
        self.invocations = state["invocations"]
        self.total_cost_us = state["total_cost_us"]
        self.ewma_cost_us = state["ewma_cost_us"]
        self.inputs_total = state["inputs_total"]
        self.outputs_total = state["outputs_total"]
        self.failures = state["failures"]
        self.retries = state["retries"]
        self.dead_letters = state["dead_letters"]
        self._input_times = deque(state["input_times"])
        self._output_times = deque(state["output_times"])
        self._input_window = state["input_window"]
        self._output_window = state["output_window"]

    @staticmethod
    def _trim(times: deque[tuple[int, int]], now_us: int) -> int:
        """Evict pairs older than the horizon; returns evicted tokens."""
        horizon = now_us - RATE_HORIZON_US
        evicted = 0
        while times and times[0][0] < horizon:
            evicted += times.popleft()[1]
        return evicted

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def avg_cost_us(self) -> float:
        if self.invocations == 0:
            return 0.0
        return self.total_cost_us / self.invocations

    @property
    def selectivity(self) -> float:
        """Output tokens per input token; 1.0 until evidence accumulates."""
        if self.inputs_total == 0:
            return 1.0
        return self.outputs_total / self.inputs_total

    def input_rate_per_s(self, now_us: int) -> float:
        self._input_window -= self._trim(self._input_times, now_us)
        span = min(now_us, RATE_HORIZON_US)
        if span <= 0:
            return 0.0
        return self._input_window * 1_000_000 / span

    def output_rate_per_s(self, now_us: int) -> float:
        self._output_window -= self._trim(self._output_times, now_us)
        span = min(now_us, RATE_HORIZON_US)
        if span <= 0:
            return 0.0
        return self._output_window * 1_000_000 / span


class StatisticsRegistry:
    """Per-workflow statistics store keyed by actor name."""

    def __init__(self):
        self._stats: dict[str, ActorStats] = {}
        #: Newest engine time any recording call has seen; lets
        #: :meth:`snapshot` evaluate rates without being handed a clock.
        self._last_now_us = 0
        #: Engine-wide (non-per-actor) counters — the checkpoint subsystem
        #: records snapshot count/bytes/duration here.  Exposed in
        #: :meth:`snapshot` under the reserved ``"__engine__"`` key when
        #: non-empty, and rendered as ``repro_engine_*`` Prometheus gauges.
        self.engine_counters: dict[str, float] = {}

    def register(self, actor: "Actor") -> ActorStats:
        # Not ``setdefault(name, ActorStats())``: that would construct
        # (and immediately discard) a full ActorStats on every call — a
        # measurable cost on the per-firing hot path.
        stats = self._stats.get(actor.name)
        if stats is None:
            stats = self._stats[actor.name] = ActorStats()
        return stats

    def get(self, actor: "Actor") -> ActorStats:
        return self.register(actor)

    def record_invocation(self, actor: "Actor", cost_us: int) -> None:
        self.get(actor).record_invocation(cost_us)

    def record_input(self, actor: "Actor", count: int, now_us: int) -> None:
        if now_us > self._last_now_us:
            self._last_now_us = now_us
        self.get(actor).record_input(count, now_us)

    def record_output(self, actor: "Actor", count: int, now_us: int) -> None:
        if now_us > self._last_now_us:
            self._last_now_us = now_us
        self.get(actor).record_output(count, now_us)

    def record_failure(self, actor: "Actor") -> None:
        """Count a failed firing attempt of *actor*."""
        self.get(actor).record_failure()

    def record_retry(self, actor: "Actor") -> None:
        """Count a fault-policy retry granted to *actor*."""
        self.get(actor).record_retry()

    def record_dead_letter(self, actor: "Actor") -> None:
        """Count a dead-lettered item attributed to *actor*."""
        self.get(actor).record_dead_letter()

    def snapshot(
        self, now_us: Optional[int] = None
    ) -> dict[str, dict[str, float]]:
        """The *single* metrics view of the runtime statistics module.

        Every per-actor series a consumer could want is here: invocation
        counts, mean and EWMA cost, token totals, selectivity, and the
        input/output rates evaluated at *now_us* (default: the newest
        engine time any recording call has seen).  The observability
        Prometheus exporter and the harness reporting both read this —
        nothing re-derives metrics from raw :class:`ActorStats` fields.
        """
        now = now_us if now_us is not None else self._last_now_us
        out: dict[str, dict[str, float]] = {
            name: {
                "invocations": stats.invocations,
                "avg_cost_us": stats.avg_cost_us,
                "ewma_cost_us": (
                    stats.ewma_cost_us
                    if stats.ewma_cost_us is not None
                    else 0.0
                ),
                "inputs_total": stats.inputs_total,
                "outputs_total": stats.outputs_total,
                "failures": stats.failures,
                "retries": stats.retries,
                "dead_letters": stats.dead_letters,
                "selectivity": stats.selectivity,
                "input_rate_per_s": stats.input_rate_per_s(now),
                "output_rate_per_s": stats.output_rate_per_s(now),
            }
            for name, stats in self._stats.items()
        }
        if self.engine_counters:
            # Reserved pseudo-actor entry carrying engine-wide counters
            # (checkpoint sizes/durations/counts).  Only present when a
            # producer wrote something, so actor-oriented consumers that
            # predate it are unaffected.
            out["__engine__"] = dict(self.engine_counters)
        return out

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        """Snapshot every actor's statistics record (Checkpointable)."""
        return {
            "stats": {
                name: stats.state_dump()
                for name, stats in self._stats.items()
            },
            "last_now_us": self._last_now_us,
            "engine_counters": dict(self.engine_counters),
        }

    def state_restore(self, state: dict) -> None:
        """Re-apply dumped statistics onto the rebuilt registry."""
        for name, stats_state in state["stats"].items():
            stats = self._stats.get(name)
            if stats is None:
                stats = self._stats[name] = ActorStats()
            stats.state_restore(stats_state)
        self._last_now_us = int(state["last_now_us"])
        self.engine_counters = dict(state["engine_counters"])


def global_rate_metrics(
    workflow: "Workflow",
    registry: StatisticsRegistry,
    default_cost_us: float = 100.0,
) -> dict[str, tuple[float, float]]:
    """Global (path-aggregated) selectivity and cost per actor.

    Follows the Highest Rate construction: for a terminal actor *A*,
    ``GS(A) = s_A`` and ``GC(A) = c_A``.  For an internal actor with
    downstream actors ``D``::

        GS(A) = s_A * sum(GS(d) for d in D)
        GC(A) = c_A + s_A * sum(GC(d) for d in D)

    When an actor is shared among multiple workflow paths the per-path
    contributions are summed, as the paper specifies.  Actors inside cycles
    fall back to their local selectivity and cost.  Actors that have never
    fired use *default_cost_us* so priorities are defined from the start.
    """
    # The structural skeleton (topological order + successor map) is
    # cached on the workflow: RB re-evaluates priorities every period,
    # and only the statistics change between periods, never the graph.
    order, successor_map = workflow.topology()
    metrics: dict[str, tuple[float, float]] = {}

    def local(name: str) -> tuple[float, float]:
        stats = registry.register(workflow.actors[name])
        cost = stats.avg_cost_us if stats.invocations else default_cost_us
        return stats.selectivity, max(cost, 1e-9)

    if order is None:
        # Cyclic workflow: everyone uses local metrics.
        for name in successor_map:
            metrics[name] = local(name)
        return metrics

    for name in reversed(order):
        s_local, c_local = local(name)
        successors = successor_map[name]
        if not successors:
            metrics[name] = (s_local, c_local)
            continue
        gs_down = sum(metrics[succ][0] for succ in successors)
        gc_down = sum(metrics[succ][1] for succ in successors)
        metrics[name] = (s_local * gs_down, c_local + s_local * gc_down)
    return metrics


def rate_priorities(
    workflow: "Workflow",
    registry: StatisticsRegistry,
    default_cost_us: float = 100.0,
) -> dict[str, float]:
    """``Pr(A) = GS(A) / GC(A)`` for every actor (higher = more urgent)."""
    metrics = global_rate_metrics(workflow, registry, default_cost_us)
    return {
        name: gs / gc if gc > 0 else 0.0
        for name, (gs, gc) in metrics.items()
    }
