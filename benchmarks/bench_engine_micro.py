"""Microbenchmarks of the engine's hot paths (real wall time).

These justify the virtual-time substitution quantitatively: they measure
what one actor dispatch, one windowed put, and one parameterized toll query
cost in *this* Python implementation, which is the per-event overhead any
wall-clock run of the engine would pay.
"""

import pytest

from repro.core.actors import MapActor, SinkActor, SourceActor
from repro.core.events import CWEvent
from repro.core.waves import WaveTag
from repro.core.windows import WindowSpec
from repro.core.workflow import Workflow
from repro.linearroad.db import create_linear_road_database, TOLL_QUERY
from repro.simulation import CostModel, SimulationRuntime, VirtualClock
from repro.stafilos import RoundRobinScheduler, SCWFDirector


def test_scheduler_dispatch_throughput(benchmark):
    """End-to-end events/second through the SCWF director."""
    n_events = 5_000

    def run():
        workflow = Workflow("micro")
        source = SourceActor(
            "src", arrivals=[(i, i) for i in range(n_events)]
        )
        source.add_output("out")
        relay = MapActor("relay", lambda v: v)
        sink = SinkActor("sink")
        workflow.add_all([source, relay, sink])
        workflow.connect(source, relay)
        workflow.connect(relay, sink)
        clock = VirtualClock()
        director = SCWFDirector(
            RoundRobinScheduler(10_000), clock, CostModel()
        )
        director.attach(workflow)
        SimulationRuntime(director, clock).run(10.0, drain=True)
        return len(sink.items)

    processed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert processed == n_events


def test_windowed_put_cost(benchmark):
    """Cost of one put through a grouped sliding window."""
    from repro.core.windows import WindowOperator

    operator = WindowOperator(
        WindowSpec.tokens(4, 1, group_by=lambda e: e.value % 64)
    )
    events = [CWEvent(i, i, WaveTag.root(i + 1)) for i in range(10_000)]

    def run():
        total = 0
        for event in events:
            total += len(operator.put(event))
        return total

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_toll_query_latency(benchmark):
    """The paper's toll SELECT against a populated statistics table."""
    db = create_linear_road_database()
    for seg in range(100):
        db.execute(
            "INSERT INTO segmentStatistics VALUES (0, $seg, 0, $lav, $cars)",
            {"seg": seg, "lav": 30.0 + seg % 30, "cars": 40 + seg % 30},
        )
    for seg in (10, 40, 70):
        db.execute(
            "INSERT INTO accidentInSegment VALUES (0, 0, $seg, 999, 500)",
            {"seg": seg},
        )
    params = {"now": 520, "xway": 0, "segment": 41, "direction": 0}

    def run():
        return db.execute(TOLL_QUERY, params).scalar()

    toll = benchmark(run)
    assert toll == 0  # fresh accident at segment 41's horizon


def test_sql_insert_or_replace_throughput(benchmark):
    db = create_linear_road_database()
    counter = iter(range(10_000_000))

    def run():
        seg = next(counter) % 100
        db.execute(
            "INSERT OR REPLACE INTO segmentStatistics "
            "VALUES (0, $seg, 0, 30.0, 55)",
            {"seg": seg},
        )

    benchmark(run)
    assert len(db.table("segmentStatistics")) <= 100
