"""repro: a reproduction of CONFLuEnCE + STAFiLOS.

CONFLuEnCE is a CONtinuous workFLow ExeCution Engine: a workflow system
whose workflows are always active, reacting to unbounded streams through
windowed active queues and wave-tagged events.  STAFiLOS is its pluggable
STreAm FLOw Scheduling framework (Neophytou, Chrysanthis, Labrinidis).

Top-level layout:

* :mod:`repro.core` — the continuous-workflow kernel (actors, ports,
  windows, waves, directors, statistics);
* :mod:`repro.directors` — models of computation (SDF, DDF, DE, PN and the
  thread-based PNCWF continuous-workflow director);
* :mod:`repro.stafilos` — the scheduled CWF director, TM windowed receiver,
  abstract scheduler and the QBS/RR/RB policies;
* :mod:`repro.simulation` — the virtual-time runtime and cost model used by
  the benchmark harness;
* :mod:`repro.sqldb` — the in-memory relational engine the Linear Road
  workflow stores segment statistics and accidents in;
* :mod:`repro.linearroad` — the Linear Road benchmark: generator, workflow
  and validator;
* :mod:`repro.harness` — experiment configurations and figure/table
  renderers for the paper's evaluation.
"""

from . import core

__version__ = "1.0.0"

__all__ = ["core", "__version__"]
