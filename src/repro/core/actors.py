"""Actors: the independent components a workflow is composed of.

Actors follow the Kepler/PtolemyII lifecycle that every director drives:

``initialize`` → ( ``prefire`` → ``fire`` → ``postfire`` )* → ``wrapup``

* ``prefire(ctx)`` returns ``True`` when the actor is willing to fire;
* ``fire(ctx)`` consumes staged inputs via ``ctx.read`` and produces outputs
  via ``ctx.send``;
* ``postfire(ctx)`` returns ``False`` to ask the director to stop scheduling
  this actor (streams normally never do).

:class:`SourceActor` models push sources: the director asks it to ``pump``
external arrivals into the workflow instead of staging inputs for it.
:class:`CompositeActor` wraps a sub-workflow governed by its own (inner)
director, mirroring Kepler's hierarchical workflows: the Linear Road
top-level workflow is continuous while its sub-tasks run under SDF or DDF.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence

from ..observability import tracer as _obs
from .context import FiringContext
from .exceptions import ActorError, CheckpointError, PortError
from .ports import InputPort, OutputPort
from .windows import WindowSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .workflow import Workflow

#: Attributes of every actor that are *structural* — they describe the
#: workflow graph and are rebuilt by the workflow builder on recovery, so
#: the generic checkpoint dump never captures them.
_STRUCTURAL_ATTRS = frozenset(
    {
        "name",
        "workflow",
        "input_ports",
        "output_ports",
        "priority",
        "nominal_cost_us",
    }
)


class Actor:
    """Base class for all workflow activities."""

    #: Directors treat sources specially (e.g. QBS regulates their firing).
    is_source = False

    #: Additional attribute names subclasses exclude from the generic
    #: checkpoint dump (on top of the structural attributes and any
    #: callable-valued attributes, which are always skipped).
    checkpoint_exclude: frozenset = frozenset()

    def __init__(self, name: str):
        if not name:
            raise ActorError("actors need a non-empty name")
        self.name = name
        self.workflow: Optional["Workflow"] = None
        self.input_ports: dict[str, InputPort] = {}
        self.output_ports: dict[str, OutputPort] = {}
        #: Designer-assigned priority (used by QBS; smaller = more urgent).
        self.priority: int = 20
        #: Nominal cost per invocation in microseconds for the simulation
        #: cost model; ``None`` means "use the model's default".
        self.nominal_cost_us: Optional[int] = None

    # ------------------------------------------------------------------
    # Port declaration
    # ------------------------------------------------------------------
    def add_input(
        self, name: str, window: Optional[WindowSpec] = None
    ) -> InputPort:
        if name in self.input_ports or name in self.output_ports:
            raise PortError(f"{self.name} already has a port named {name!r}")
        port = InputPort(self, name, window)
        self.input_ports[name] = port
        return port

    def add_output(self, name: str) -> OutputPort:
        if name in self.input_ports or name in self.output_ports:
            raise PortError(f"{self.name} already has a port named {name!r}")
        port = OutputPort(self, name)
        self.output_ports[name] = port
        return port

    def input(self, name: str) -> InputPort:
        try:
            return self.input_ports[name]
        except KeyError:
            raise PortError(f"{self.name} has no input port {name!r}") from None

    def output(self, name: str) -> OutputPort:
        try:
            return self.output_ports[name]
        except KeyError:
            raise PortError(f"{self.name} has no output port {name!r}") from None

    # ------------------------------------------------------------------
    # Lifecycle (overridden by concrete actors)
    # ------------------------------------------------------------------
    def initialize(self, ctx: FiringContext) -> None:
        """One-time setup before the workflow starts iterating."""

    def prefire(self, ctx: FiringContext) -> bool:
        """Return True when the actor is ready to fire."""
        return True

    def fire(self, ctx: FiringContext) -> None:
        """Consume staged inputs, produce outputs."""
        raise NotImplementedError

    def postfire(self, ctx: FiringContext) -> bool:
        """Return False to stop being scheduled (continuous actors: True)."""
        return True

    def wrapup(self, ctx: FiringContext) -> None:
        """Teardown after the director stops the workflow."""

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        """Generic actor snapshot: every non-structural instance attribute.

        The dump splits attributes in two buckets:

        * ``plain`` — picklable values captured as-is (lists of recorded
          items, counters, caches...).  The dict references the live
          containers; the checkpoint orchestrator pickles it synchronously
          before the engine takes another step.
        * ``nested`` — attribute values that themselves implement the
          ``Checkpointable`` protocol (e.g. the shared Linear Road
          :class:`~repro.sqldb.Database`).  These are dumped through the
          protocol and restored **in place** on the rebuilt object, so
          references shared between actors stay shared after recovery.

        Structural attributes (ports, workflow link, priority) and
        callable-valued attributes (wrapped functions, callbacks) are
        skipped — they belong to the workflow builder, not the snapshot.
        Subclasses with unpicklable runtime state either extend
        :attr:`checkpoint_exclude` or override this method.
        """
        excluded = _STRUCTURAL_ATTRS | type(self).checkpoint_exclude
        plain: dict = {}
        nested: dict = {}
        for attr, value in self.__dict__.items():
            if attr in excluded or callable(value):
                continue
            if hasattr(value, "state_dump") and hasattr(value, "state_restore"):
                nested[attr] = value.state_dump()
            else:
                plain[attr] = value
        return {"plain": plain, "nested": nested}

    def state_restore(self, state: dict) -> None:
        """Apply a generic dump on the structurally rebuilt actor.

        ``plain`` attributes are assigned directly; ``nested`` dumps are
        applied in place through the target attribute's own
        ``state_restore`` so shared references survive recovery.
        """
        for attr, value in state["plain"].items():
            setattr(self, attr, value)
        for attr, sub_state in state["nested"].items():
            target = getattr(self, attr, None)
            if target is None or not hasattr(target, "state_restore"):
                raise CheckpointError(
                    f"actor {self.name!r}: cannot restore nested state for "
                    f"attribute {attr!r} — the rebuilt actor has no "
                    "Checkpointable object there (structure mismatch?)"
                )
            target.state_restore(sub_state)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class SourceActor(Actor):
    """An actor that injects external events (push communication).

    Directors call :meth:`pump` instead of staging inputs; the source emits
    whatever external arrivals are due at engine time ``ctx.now`` via
    ``ctx.send``.  Sub-classes either override :meth:`pump` or provide an
    ``arrivals`` iterable of ``(timestamp_us, value)`` pairs.

    With ``out_of_order=True`` the source models bounded-disorder
    delivery: arrivals are ``(delivery_us, value, event_ts_us)`` triples
    (2-tuples still work — delivery time doubles as event time), sorted
    by *delivery*.  Due deliveries land in a reorder heap and are
    released to the workflow **in event-time order** once they are
    ``disorder_us`` old (nothing earlier can still be in transit), so
    downstream sees the same monotone stream an in-order source would
    emit, just later.  :meth:`progress_watermark` exposes the matching
    bounded-disorder frontier bound (see ``repro.frontier``).
    """

    is_source = True
    #: Unbounded sources (live push connections) are never "done": an
    #: empty pending queue means "nothing yet", not end-of-stream.
    unbounded = False
    #: The arrival schedule is structural (reproduced by the workload
    #: builder on recovery); only the replay *cursor* is checkpointed, so
    #: a resumed source re-emits nothing and drops nothing.  The cached
    #: sole-output-port name is derived from the (structural) port dict,
    #: and the reorder heap is rebuilt from the cursor + release count.
    checkpoint_exclude = frozenset(
        {"_pending", "_sole_output_name", "_reorder"}
    )

    def __init__(
        self,
        name: str,
        arrivals: Optional[Iterable[tuple]] = None,
        batch_limit: Optional[int] = None,
        out_of_order: bool = False,
        disorder_us: int = 0,
    ):
        super().__init__(name)
        if disorder_us < 0:
            raise ActorError("disorder_us cannot be negative")
        self._pending: list[tuple] = (
            sorted(arrivals, key=lambda pair: pair[0]) if arrivals else []
        )
        self._cursor = 0
        self.batch_limit = batch_limit
        self._out_of_order = out_of_order
        self.disorder_us = disorder_us
        #: Reorder heap of ``(event_ts, pending_index, value)``: due
        #: deliveries awaiting release in event-time order.
        self._reorder: list[tuple[int, int, Any]] = []
        #: How many heap entries have been released (checkpoint cursor
        #: for the deterministic heap rebuild on restore).
        self._released_count = 0
        #: Lazily cached result of :meth:`_sole_output` — looked up once,
        #: not once per emitted arrival (ports are fixed after wiring).
        self._sole_output_name: Optional[str] = None

    def load(self, arrivals: Iterable[tuple]) -> None:
        """Replace the arrival schedule (before the workflow starts)."""
        self._pending = sorted(arrivals, key=lambda pair: pair[0])
        self._cursor = 0
        self._reorder = []
        self._released_count = 0

    def feed(self, arrivals: Iterable[tuple]) -> None:
        """Append arrivals to the schedule mid-run (streamed delivery).

        Unlike :meth:`load` this keeps the replay cursor, so a source
        can receive its schedule incrementally — the shard workers feed
        chunks routed over a pipe this way.

        In strict (in-order) mode, fed arrivals must not be earlier than
        anything already scheduled: the pending list must stay sorted by
        delivery time for the cursor to mean anything, so a violating
        batch raises :class:`~repro.core.exceptions.ActorError` instead
        of silently corrupting the cursor.  An ``out_of_order`` source
        tolerates it — the undelivered tail is re-sorted with the new
        batch and event-time ordering is restored by the reorder heap.
        """
        new = sorted(arrivals, key=lambda pair: pair[0])
        if not new:
            return
        if self._pending and new[0][0] < self._pending[-1][0]:
            if not self._out_of_order:
                raise ActorError(
                    f"source {self.name}: fed arrival at t={new[0][0]} is "
                    f"earlier than the already-scheduled "
                    f"t={self._pending[-1][0]}; feed() only appends — "
                    "use an out_of_order source for disordered streams"
                )
            tail = self._pending[self._cursor:]
            del self._pending[self._cursor:]
            self._pending.extend(
                sorted(tail + new, key=lambda pair: pair[0])
            )
            return
        self._pending.extend(new)

    def feed_columns(
        self,
        ts: Sequence[int],
        values: Sequence[Any],
        event_ts: Optional[Sequence[int]] = None,
    ) -> None:
        """Append a decoded columnar batch (the shard codec fast path).

        Semantically ``feed(zip(ts, values[, event_ts]))`` without ever
        materializing an intermediate row list: the delivery column is
        verified monotone and non-regressing (codec chunks are slices
        of a delivery-sorted schedule, so this is the common case) and
        the rows stream straight from ``zip`` into the pending
        schedule.  A batch that violates the ordering falls back to
        :meth:`feed`, keeping the strict-mode/out-of-order semantics —
        and their failure modes — identical to row-wise feeding.
        """
        if not ts:
            return
        rows = (
            zip(ts, values)
            if event_ts is None
            else zip(ts, values, event_ts)
        )
        in_order = all(a <= b for a, b in zip(ts, ts[1:]))
        if not in_order or (
            self._pending and ts[0] < self._pending[-1][0]
        ):
            self.feed(list(rows))
            return
        self._pending.extend(rows)

    # ------------------------------------------------------------------
    def next_arrival_time(self) -> Optional[int]:
        """Engine time of the next emission this source could make."""
        if not self._out_of_order:
            if self._cursor >= len(self._pending):
                return None
            return self._pending[self._cursor][0]
        times = []
        if self._cursor < len(self._pending):
            times.append(self._pending[self._cursor][0])
            if self._reorder:
                # A buffered event releases once it is disorder_us old.
                times.append(self._reorder[0][0] + self.disorder_us)
        elif self._reorder:
            # The delivery schedule is drained: the buffer flushes on
            # the next pump, whenever the clock reaches it.
            times.append(self._reorder[0][0])
        return min(times) if times else None

    def pending_arrivals(self, now: int) -> int:
        """How many arrivals are due (timestamp <= now) but undelivered.

        For an out-of-order source, everything buffered for reordering
        also counts as due — it has been delivered but not yet released.
        """
        count = len(self._reorder)
        pending = self._pending
        index = self._cursor
        while index < len(pending) and pending[index][0] <= now:
            count += 1
            index += 1
        return count

    def exhausted(self) -> bool:
        return self._cursor >= len(self._pending) and not self._reorder

    def shed_due(self, now: int, max_pending: int) -> int:
        """Drop the oldest due arrivals beyond *max_pending* (shedding).

        Under overload, arrivals the engine has not pulled yet pile up at
        the source; a load-shedding policy may discard the stalest ones —
        their response-time targets are already unmeetable.  Returns how
        many arrivals were dropped.
        """
        due = self.pending_arrivals(now)
        excess = due - max_pending
        if excess <= 0:
            return 0
        self._cursor += excess
        return excess

    def peek_arrival(self) -> Optional[tuple[int, Any]]:
        """The undelivered ``(timestamp, value)`` at the cursor, if any."""
        if self._cursor >= len(self._pending):
            return None
        return self._pending[self._cursor]

    def skip_current(self) -> Optional[tuple[int, Any]]:
        """Discard and return the arrival at the cursor.

        Poison-pill recovery hook for supervising directors: when a pump
        keeps failing on the same arrival, the supervisor dead-letters it
        and skips past so the source does not loop on the poison forever.
        """
        arrival = self.peek_arrival()
        if arrival is not None:
            self._cursor += 1
        return arrival

    def pump(self, ctx: FiringContext) -> int:
        """Emit due arrivals (up to ``batch_limit``); returns how many."""
        if self._out_of_order:
            return self._pump_out_of_order(ctx)
        emitted = 0
        limit = self.batch_limit
        while self._cursor < len(self._pending):
            timestamp, value = self._pending[self._cursor]
            if timestamp > ctx.now:
                break
            self.emit_arrival(ctx, timestamp, value)
            self._cursor += 1
            emitted += 1
            if limit is not None and emitted >= limit:
                break
        if emitted:
            if _obs.ENABLED:
                _obs._TRACER.instant(
                    "source.pump", ctx.now, self.name, emitted=emitted
                )
        return emitted

    def _pump_out_of_order(self, ctx: FiringContext) -> int:
        """Bounded-disorder pump: buffer due deliveries, release in order.

        Deliveries whose transport time has come move into the reorder
        heap keyed by event timestamp; the heap releases an event once
        nothing older can still be in transit — its event time is at
        least ``disorder_us`` behind the clock, or the entire delivery
        schedule has drained (then one timestamp per pump).  Released
        events therefore reach the workflow in monotone event-time
        order.
        """
        pending = self._pending
        heap = self._reorder
        now = ctx.now
        cursor = self._cursor
        deposited = False
        while cursor < len(pending):
            entry = pending[cursor]
            if entry[0] > now:
                break
            event_ts = entry[2] if len(entry) > 2 else entry[0]
            heapq.heappush(heap, (event_ts, cursor, entry[1]))
            cursor += 1
            deposited = True
        self._cursor = cursor
        # Release one distinct event timestamp per pump, and never in
        # the same pump that deposited a delivery.  Idle consults
        # (frontier closures) then interleave between releases at the
        # same event-time positions as they do between in-order
        # deliveries: once deposits are in, the progress watermark just
        # before releasing a ripe timestamp T is exactly T (any
        # undelivered transport is newer than T + disorder).  Releasing
        # in the deposit pump would process the event before any idle
        # consult sees the advanced watermark; a bulk flush of every
        # ripened event would likewise fire a burst with no closure
        # opportunity in between.  Both desynchronize the run from the
        # in-order oracle.
        if deposited or not heap:
            release_limit = -1
        elif cursor >= len(pending) or heap[0][0] <= now - self.disorder_us:
            # Ripe (nothing older can still be in transit) or the
            # delivery schedule has drained: flush this timestamp only.
            release_limit = heap[0][0]
        else:
            release_limit = -1
        emitted = 0
        limit = self.batch_limit
        while heap and heap[0][0] <= release_limit:
            event_ts, _, value = heapq.heappop(heap)
            self.emit_arrival(ctx, event_ts, value)
            self._released_count += 1
            emitted += 1
            if limit is not None and emitted >= limit:
                break
        if emitted:
            if _obs.ENABLED:
                _obs._TRACER.instant(
                    "source.pump",
                    ctx.now,
                    self.name,
                    emitted=emitted,
                    buffered=len(heap),
                )
        return emitted

    def progress_watermark(self) -> Optional[int]:
        """Event-time bound below which this source emits nothing more.

        ``None`` means unbounded — the source is drained and asserts
        nothing further.  In-order sources are bounded by the next
        undelivered arrival; out-of-order sources by the oldest buffered
        event and the disorder bound on undelivered transport
        (``next_delivery - disorder_us``): any future delivery carries
        an event at most ``disorder_us`` older than its delivery time.
        """
        if self._cursor >= len(self._pending):
            if self._reorder:
                return self._reorder[0][0]
            return None
        if not self._out_of_order:
            return self._pending[self._cursor][0]
        bound = self._pending[self._cursor][0] - self.disorder_us
        if self._reorder and self._reorder[0][0] < bound:
            bound = self._reorder[0][0]
        return max(0, bound)

    def emit_arrival(self, ctx: FiringContext, timestamp: int, value: Any) -> None:
        """Emit one arrival; sub-classes may transform or fan out."""
        port = self._sole_output()
        ctx.send(port, value, timestamp=timestamp)

    def _sole_output(self) -> str:
        name = self._sole_output_name
        if name is not None:
            return name
        if len(self.output_ports) != 1:
            raise ActorError(
                f"source {self.name} must override emit_arrival when it "
                f"has {len(self.output_ports)} output ports"
            )
        name = next(iter(self.output_ports))
        self._sole_output_name = name
        return name

    def fire(self, ctx: FiringContext) -> None:
        self.pump(ctx)

    def state_restore(self, state: dict) -> None:
        """Re-apply the cursor and rebuild the reorder heap.

        The heap is derived state: its entries are exactly the delivered
        (``index < cursor``) arrivals minus the ``_released_count``
        oldest in ``(event_ts, index)`` order — the same order
        :meth:`_pump_out_of_order` pops them in — so a resumed source
        releases the identical remaining sequence.
        """
        super().state_restore(state)
        if not self._out_of_order:
            return
        delivered = sorted(
            (
                entry[2] if len(entry) > 2 else entry[0],
                index,
                entry[1],
            )
            for index, entry in enumerate(self._pending[: self._cursor])
        )
        self._reorder = delivered[self._released_count:]
        heapq.heapify(self._reorder)


class FunctionActor(Actor):
    """Wraps a plain function ``fn(ctx)`` as a full actor.

    Convenience for tests, examples and sub-workflow plumbing where defining
    a class per step would be noise.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[FiringContext], None],
        inputs: Sequence[str | tuple[str, WindowSpec]] = ("in",),
        outputs: Sequence[str] = ("out",),
    ):
        super().__init__(name)
        self._fn = fn
        for spec in inputs:
            if isinstance(spec, tuple):
                self.add_input(spec[0], spec[1])
            else:
                self.add_input(spec)
        for out in outputs:
            self.add_output(out)

    def fire(self, ctx: FiringContext) -> None:
        self._fn(ctx)


class MapActor(Actor):
    """One-in/one-out transform: ``out = fn(value)`` per consumed item.

    When the input carries windows, ``fn`` receives the window's payload
    list; when it carries single events, ``fn`` receives the payload.
    Returning ``None`` drops the item (selectivity < 1); returning a list
    fans out (selectivity > 1).
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[Any], Any],
        window: Optional[WindowSpec] = None,
    ):
        super().__init__(name)
        self._fn = fn
        self.add_input("in", window)
        self.add_output("out")

    def fire(self, ctx: FiringContext) -> None:
        item = ctx.read("in")
        if item is None:
            return
        payload = item.values if hasattr(item, "values") else item.value
        result = self._fn(payload)
        if result is None:
            return
        if isinstance(result, list):
            for part in result:
                ctx.send("out", part)
        else:
            ctx.send("out", result)

    def fire_batch(self, ctx: FiringContext) -> None:
        """Train fast path: drain every staged item with prebound locals.

        Behaviourally identical to calling :meth:`fire` until the staged
        queue is empty (``MapActor`` keeps the trivial base-class
        ``prefire``/``postfire``, which is what makes the substitution
        legal — the director checks that before using this entry point).
        """
        fn = self._fn
        read = ctx.read
        send = ctx.send
        while True:
            item = read("in")
            if item is None:
                return
            payload = item.values if hasattr(item, "values") else item.value
            result = fn(payload)
            if result is None:
                continue
            if isinstance(result, list):
                for part in result:
                    send("out", part)
            else:
                send("out", result)


class SinkActor(Actor):
    """Collects everything it consumes; the terminal probe of a workflow.

    Records ``(engine_time_us, item)`` pairs, and, when items are events or
    windows, response-time samples ``engine_time - external_timestamp``.
    """

    def __init__(self, name: str, callback: Optional[Callable] = None):
        super().__init__(name)
        self.add_input("in")
        self.items: list[tuple[int, Any]] = []
        self.response_times_us: list[tuple[int, int]] = []
        self._callback = callback

    def fire(self, ctx: FiringContext) -> None:
        delivered = 0
        last_response: Optional[int] = None
        while True:
            item = ctx.read("in")
            if item is None:
                break
            delivered += 1
            self.items.append((ctx.now, item))
            timestamp = getattr(item, "timestamp", None)
            if timestamp is not None:
                last_response = ctx.now - timestamp
                self.response_times_us.append((ctx.now, last_response))
            if self._callback is not None:
                self._callback(ctx, item)
        if delivered:
            if _obs.ENABLED:
                _obs._TRACER.instant(
                    "sink.deliver",
                    ctx.now,
                    self.name,
                    count=delivered,
                    response_us=last_response,
                )
                _obs._TRACER.counter("sink.total", ctx.now, len(self.items), self.name)

    #: ``fire`` already drains every staged item, so it doubles as the
    #: train fast path unchanged.
    fire_batch = fire

    @property
    def values(self) -> list:
        out = []
        for _, item in self.items:
            if hasattr(item, "values"):
                out.append(item.values)
            elif hasattr(item, "value"):
                out.append(item.value)
            else:
                out.append(item)
        return out


class CompositeActor(Actor):
    """An actor whose behaviour is a sub-workflow run by an inner director.

    The outer director fires the composite like any opaque actor; the
    composite transfers its staged inputs onto the sub-workflow's boundary
    source ports, runs the inner director to quiescence, and forwards
    whatever reached the sub-workflow's boundary sinks to its own outputs.

    Boundary mapping: ``bind_input(outer_name, inner_actor, inner_port)``
    routes staged items into the inner graph; ``bind_output(outer_name,
    inner_sink)`` declares which inner sink feeds which outer output port.
    """

    def __init__(self, name: str, subworkflow: "Workflow", director):
        super().__init__(name)
        self.subworkflow = subworkflow
        self.director = director
        self._input_bindings: dict[str, tuple[Actor, str]] = {}
        self._output_bindings: dict[str, SinkActor] = {}
        self._initialized = False

    def bind_input(
        self, outer_name: str, inner_actor: Actor, inner_port: str = "in"
    ) -> None:
        if outer_name not in self.input_ports:
            raise PortError(f"{self.name} has no input port {outer_name!r}")
        inner_actor.input(inner_port).boundary = True
        self._input_bindings[outer_name] = (inner_actor, inner_port)

    def bind_output(self, outer_name: str, inner_sink: SinkActor) -> None:
        if outer_name not in self.output_ports:
            raise PortError(f"{self.name} has no output port {outer_name!r}")
        self._output_bindings[outer_name] = inner_sink

    # ------------------------------------------------------------------
    def initialize(self, ctx: FiringContext) -> None:
        self.director.attach(self.subworkflow)
        self.director.initialize_all()
        self._initialized = True

    def fire(self, ctx: FiringContext) -> None:
        if not self._initialized:
            raise ActorError(
                f"composite {self.name} fired before initialization"
            )
        for outer_name in list(self.input_ports):
            binding = self._input_bindings.get(outer_name)
            if binding is None:
                continue
            inner_actor, inner_port = binding
            while True:
                item = ctx.read(outer_name)
                if item is None:
                    break
                self.director.inject(inner_actor, inner_port, item, ctx.now)
        self.director.run_to_quiescence(ctx.now)
        for outer_name, sink in self._output_bindings.items():
            for _, item in sink.items:
                value = item.value if hasattr(item, "value") else item
                ctx.send(outer_name, value)
            sink.items.clear()
            sink.response_times_us.clear()

    def wrapup(self, ctx: FiringContext) -> None:
        if self._initialized:
            self.director.wrapup_all()

    # ------------------------------------------------------------------
    # Checkpointable protocol
    # ------------------------------------------------------------------
    def state_dump(self) -> dict:
        """Hierarchical workflows are not yet checkpointable.

        The composite's inner director owns its own receivers, statistics
        and scheduler; snapshotting the hierarchy consistently needs a
        recursive barrier that is out of scope for the flat benchmark
        workflows — fail loudly instead of silently dropping inner state.
        """
        raise CheckpointError(
            f"composite actor {self.name!r} cannot be checkpointed: "
            "hierarchical sub-workflows are not supported yet"
        )

    def state_restore(self, state: dict) -> None:
        """Mirror of :meth:`state_dump` — composites cannot be restored."""
        raise CheckpointError(
            f"composite actor {self.name!r} cannot be restored from a "
            "checkpoint: hierarchical sub-workflows are not supported yet"
        )
