"""DE director: global timestamp order and causality."""

import pytest

from repro.core.actors import FunctionActor, SinkActor
from repro.core.events import CWEvent
from repro.core.exceptions import DirectorError
from repro.core.waves import WaveTag
from repro.core.workflow import Workflow
from repro.directors.de import DEDirector


def build():
    wf = Workflow("de")
    relay = FunctionActor(
        "relay", lambda ctx: ctx.send("out", ctx.read("in").value)
    )
    sink = SinkActor("sink")
    wf.add_all([relay, sink])
    wf.connect(relay, sink)
    relay.input("in").boundary = True
    director = DEDirector()
    director.attach(wf)
    director.initialize_all()
    return wf, relay, sink, director


class TestDE:
    def test_events_processed_in_timestamp_order(self):
        wf, relay, sink, director = build()
        director.inject(relay, "in", CWEvent("late", 30, WaveTag.root(1)), 0)
        director.inject(relay, "in", CWEvent("early", 10, WaveTag.root(2)), 0)
        director.run_to_quiescence(0)
        assert sink.values == ["early", "late"]

    def test_model_time_advances_to_last_event(self):
        wf, relay, sink, director = build()
        director.inject(relay, "in", CWEvent("x", 500, WaveTag.root(1)), 0)
        director.run_to_quiescence(0)
        assert director.current_time() == 500

    def test_run_until_horizon_leaves_future_events(self):
        wf, relay, sink, director = build()
        director.inject(relay, "in", CWEvent("now", 10, WaveTag.root(1)), 0)
        director.inject(relay, "in", CWEvent("later", 99, WaveTag.root(2)), 0)
        director.run_until(50)
        assert sink.values == ["now"]
        assert director.pending == 1

    def test_causality_violation_rejected(self):
        wf, relay, sink, director = build()
        director.inject(relay, "in", CWEvent("x", 100, WaveTag.root(1)), 0)
        director.run_to_quiescence(0)
        with pytest.raises(DirectorError):
            director.inject(
                relay, "in", CWEvent("past", 50, WaveTag.root(2)), 0
            )

    def test_windowed_ports_rejected(self):
        from repro.core.windows import WindowSpec

        wf = Workflow("bad")
        actor = FunctionActor(
            "w",
            lambda ctx: None,
            inputs=(("in", WindowSpec.tokens(2)),),
            outputs=(),
        )
        sink = SinkActor("sink")
        wf.add_all([actor, sink])
        wf.connect(actor.add_output("out"), sink.input("in"))
        actor.input("in").boundary = True
        with pytest.raises(DirectorError):
            DEDirector().attach(wf)
