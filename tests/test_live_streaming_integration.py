"""Full push pipeline: TCP publisher -> live threaded engine -> sink.

The closest thing to the paper's deployment picture: an external producer
pushes records over a real socket while the thread-per-actor PNCWF engine
consumes, windows, and emits — all wall-clock, no virtual time anywhere.
"""

import threading
import time

import pytest

from repro.core import MapActor, SinkActor, WindowSpec, Workflow
from repro.directors import PNCWFDirector
from repro.streams import JSONLinesCodec, publish_lines, TCPStreamSource

N_RECORDS = 40


class _EngineClock:
    """Adapter: expose the live director's event time as a clock."""

    def __init__(self, director):
        self.director = director

    @property
    def now_us(self):
        return self.director.current_time()


def test_tcp_push_into_live_pncwf():
    workflow = Workflow("live-stream")
    source = TCPStreamSource("tcp", codec=JSONLinesCodec())
    pairs = MapActor(
        "pairs",
        lambda values: values[0]["v"] + values[1]["v"],
        window=WindowSpec.tokens(2, 2),
    )
    sink = SinkActor("sink")
    workflow.add_all([source, pairs, sink])
    workflow.connect(source, pairs)
    workflow.connect(pairs, sink)

    director = PNCWFDirector(time_scale=1.0, poll_timeout_s=0.01)
    source.clock = _EngineClock(director)
    host, port = source.listen()
    director.attach(workflow)
    director.initialize_all()
    director.start()
    try:
        publisher = threading.Thread(
            target=publish_lines,
            args=(host, port, [{"v": i} for i in range(N_RECORDS)]),
        )
        publisher.start()
        publisher.join(timeout=5)
        deadline = time.monotonic() + 10.0
        while (
            len(sink.items) < N_RECORDS // 2
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
    finally:
        director.stop()
        source.close()

    assert source.received == N_RECORDS
    assert len(sink.items) == N_RECORDS // 2
    assert sorted(sink.values) == [
        4 * k + 1 for k in range(N_RECORDS // 2)
    ]
