"""Multicore-aware scheduled execution (the paper's §5 scale-up sketch).

"First, the SCWF Director is made aware of the CPU cores topology in
modern machines to balance the distribution of the ready actors queue to
each core while considering data dependencies."

This module implements that direction as a *processor-sharing
approximation* on the virtual clock: when the director dispatches a
firing, the firing's cost is divided by the instantaneous parallelism —
the number of distinct actors that currently hold ready work, capped at
the core count.  Two firings of the *same* actor never overlap (an actor
is single-threaded, the data dependency the paper flags), which the model
respects by definition: parallelism counts distinct runnable actors.

This deliberately models the *capacity* effect of multicore execution
(slope of the saturation point with cores) rather than cycle-accurate core
placement; DESIGN.md lists it as an extension, and the ablation bench
verifies the expected behaviour — capacity grows with cores and saturates
once parallelism exceeds the workflow's runnable breadth.
"""

from __future__ import annotations

from ..core.exceptions import DirectorError
from .abstract_scheduler import AbstractScheduler
from .scwf_director import SCWFDirector
from .states import ActorState


class MulticoreSCWFDirector(SCWFDirector):
    """SCWF with processor-sharing across ``cores`` simulated cores."""

    model_name = "SCWF-MC"

    def __init__(
        self,
        scheduler: AbstractScheduler,
        clock,
        cost_model,
        cores: int = 2,
        **kwargs,
    ):
        if cores < 1:
            raise DirectorError("cores must be >= 1")
        super().__init__(scheduler, clock, cost_model, **kwargs)
        self.cores = cores
        #: Sum over firings of the parallelism each ran under (telemetry).
        self._parallelism_weighted = 0.0
        self._parallelism_samples = 0

    # ------------------------------------------------------------------
    def _current_parallelism(self) -> int:
        """Distinct actors with ready work right now, capped at cores.

        Served from the scheduler's incrementally maintained counter —
        O(1) per firing instead of an O(A) rescan of every ready queue.
        """
        runnable = self.scheduler.nonempty_internal_count()
        return max(1, min(self.cores, runnable))

    def mean_parallelism(self) -> float:
        if self._parallelism_samples == 0:
            return 1.0
        return self._parallelism_weighted / self._parallelism_samples

    # ------------------------------------------------------------------
    def _fire_internal(self, actor) -> bool:
        parallelism = self._current_parallelism()
        self._parallelism_weighted += parallelism
        self._parallelism_samples += 1
        # Temporarily scale the clock's advance for this firing.
        original_advance = self.clock.advance

        def shared_advance(delta_us: int) -> int:
            return original_advance(max(1, int(delta_us / parallelism)))

        self.clock.advance = shared_advance
        try:
            return super()._fire_internal(actor)
        finally:
            self.clock.advance = original_advance
