"""Table 2: state conditions for an actor A in the different schedulers.

Regenerates the table by *executing* the state machines: for each scheduler
and each condition combination, the bench drives a real scheduler instance
into that situation and reads the resulting state.
"""

from repro.core.actors import MapActor, SinkActor, SourceActor
from repro.core.events import CWEvent
from repro.core.statistics import StatisticsRegistry
from repro.core.waves import WaveTag
from repro.core.workflow import Workflow
from repro.stafilos.schedulers import (
    QuantumPriorityScheduler,
    RateBasedScheduler,
    RoundRobinScheduler,
)
from repro.stafilos.states import ActorState

_serial = iter(range(1, 1_000_000))


def fresh(scheduler_factory):
    workflow = Workflow(f"w{next(_serial)}")
    source = SourceActor("src", arrivals=[(10, "x")])
    source.add_output("out")
    worker = MapActor("worker", lambda v: v)
    sink = SinkActor("sink")
    workflow.add_all([source, worker, sink])
    workflow.connect(source, worker)
    workflow.connect(worker, sink)
    scheduler = scheduler_factory()
    scheduler.initialize(workflow, StatisticsRegistry())
    return scheduler, source, worker


def give_event(scheduler, actor):
    scheduler.enqueue(
        actor, "in", CWEvent("v", 0, WaveTag.root(next(_serial)))
    )


def observe_states(scheduler_factory):
    """Drive one scheduler through the Table 2 situations."""
    observed = {}

    scheduler, source, worker = fresh(scheduler_factory)
    observed["internal, no events"] = scheduler.state_of(worker)

    scheduler, source, worker = fresh(scheduler_factory)
    give_event(scheduler, worker)
    if isinstance(scheduler, RateBasedScheduler):
        observed["internal, events buffered (next period)"] = (
            scheduler.state_of(worker)
        )
        scheduler.on_iteration_end(0)
        observed["internal, events in queue"] = scheduler.state_of(worker)
    else:
        observed["internal, events in queue"] = scheduler.state_of(worker)
        scheduler.quantum[worker.name] = -1
        scheduler.invalidate_state(worker)
        observed["internal, events but exhausted quantum"] = (
            scheduler.state_of(worker)
        )

    scheduler, source, worker = fresh(scheduler_factory)
    observed["source, fresh"] = scheduler.state_of(source)
    scheduler.on_actor_fire_end(source, 10, now=10)
    observed["source, already fired this iteration/period"] = (
        scheduler.state_of(source)
    )
    return observed


def test_table2_state_conditions(once):
    factories = {
        "QBS": lambda: QuantumPriorityScheduler(500),
        "RR": lambda: RoundRobinScheduler(10_000),
        "RB": RateBasedScheduler,
    }
    results = once(
        lambda: {name: observe_states(fn) for name, fn in factories.items()}
    )
    print()
    print("Table 2: observed state conditions per scheduler")
    for name, observed in results.items():
        print(f"  {name}:")
        for situation, state in observed.items():
            print(f"    {situation:<45} -> {state.value}")

    for name in ("QBS", "RR"):
        observed = results[name]
        assert observed["internal, no events"] is ActorState.INACTIVE
        assert observed["internal, events in queue"] is ActorState.ACTIVE
        assert (
            observed["internal, events but exhausted quantum"]
            is ActorState.WAITING
        )
        assert observed["source, fresh"] is ActorState.ACTIVE
        assert (
            observed["source, already fired this iteration/period"]
            is ActorState.WAITING
        )
    rb = results["RB"]
    assert rb["internal, no events"] is ActorState.INACTIVE
    assert (
        rb["internal, events buffered (next period)"] is ActorState.WAITING
    )
    assert rb["internal, events in queue"] is ActorState.ACTIVE
    assert rb["source, fresh"] is ActorState.ACTIVE
    assert (
        rb["source, already fired this iteration/period"]
        is ActorState.WAITING
    )
